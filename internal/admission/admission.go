// Package admission is the grid's front door: a durable, multi-tenant
// submission queue that sits between Submit and the scheduler's
// dispatch engine. The paper's F3 flow hands every Submit straight to
// the Scheduler Service; under heavy traffic that collapses. Here each
// accepted submission is journaled (by the caller, through the same
// WAL-backed resource store that holds the job-set document) before the
// ack is sent, then parked in a per-tenant queue. A single dequeue loop
// drains the queues with weighted fair sharing — deficit round-robin
// across tenants, which for unit-cost job sets reduces to weighted
// round-robin — and strict priority classes within each tenant
// (interactive before batch before scavenger). Per-tenant quotas bound
// both queued and running sets, and when a bound is hit Submit sheds
// with a typed QueueFullFault carrying a Retry-After hint instead of
// letting the backlog grow without limit.
//
// The queue itself holds no persistent state: the job-set resource
// document (status "Queued", stamped with tenant, class and admission
// sequence) is the journal, and recovery rebuilds the in-memory queues
// by replaying those documents through Requeue in sequence order.
package admission

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"uvacg/internal/pipeline"
)

// Priority classes, ordered. An empty class means ClassBatch.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
	ClassScavenger   = "scavenger"
)

const numClasses = 3

// classRank maps a class to its strict priority (lower drains first).
// ok is false for unknown classes.
func classRank(class string) (int, bool) {
	switch class {
	case ClassInteractive:
		return 0, true
	case ClassBatch, "":
		return 1, true
	case ClassScavenger:
		return 2, true
	}
	return 0, false
}

// ValidClass reports whether class names a known priority class.
func ValidClass(class string) bool {
	_, ok := classRank(class)
	return ok
}

// NormalizeClass canonicalizes an empty class to ClassBatch.
func NormalizeClass(class string) string {
	if class == "" {
		return ClassBatch
	}
	return class
}

// Entry is one queued job set. ID, Name and Topic identify the parked
// WSRF resource; Tenant, Class and Seq are the admission coordinates
// persisted on its document so a restarted master can rebuild the
// queue.
type Entry struct {
	ID       string
	Name     string
	Topic    string
	Tenant   string
	Class    string
	Seq      uint64
	Enqueued time.Time
}

// Metrics path and actions the queue records under when Config.Metrics
// is set, mirroring the "/wal" convention: one pseudo-path per
// subsystem, one action per operation.
const (
	MetricsPath   = "/admission"
	ActionEnqueue = "urn:uvacg:admission/Enqueue"
	ActionDequeue = "urn:uvacg:admission/Dequeue"
	ActionShed    = "urn:uvacg:admission/Shed"
)

// EventKind tags an Event.
type EventKind int

// Queue event kinds, in lifecycle order.
const (
	EventEnqueue EventKind = iota
	EventDequeue
	EventShed
	EventRemove
)

// Event is one queue transition, delivered synchronously (outside the
// queue lock) to Config.Observer. The simulator's I6 invariant is
// checked over this ledger.
type Event struct {
	Kind   EventKind
	Tenant string
	Class  string
	Name   string
	Seq    uint64
	// Depth is the global queued count after the event.
	Depth int
}

// Config tunes a Queue. The zero value admits everything, serves
// tenants round-robin with equal weight, and hints a 1s Retry-After on
// shed (unreachable with no bounds).
type Config struct {
	// MaxQueued bounds the total parked sets across all tenants
	// (0 = unlimited).
	MaxQueued int
	// TenantQueued bounds each tenant's parked sets (0 = unlimited).
	TenantQueued int
	// TenantRunning bounds each tenant's concurrently dispatched sets
	// (0 = unlimited). A tenant at its cap keeps its backlog parked;
	// other tenants drain past it.
	TenantRunning int
	// Weights sets per-tenant fair-share weights; tenants not listed
	// get DefaultWeight. Weights below 1 are raised to 1.
	Weights map[string]int
	// DefaultWeight is the weight for unlisted tenants (default 1).
	DefaultWeight int
	// AnonymousTenant is the bucket for unauthenticated submissions
	// (default "anonymous").
	AnonymousTenant string
	// RetryAfter is the backoff hint attached to QueueFullFault
	// (default 1s).
	RetryAfter time.Duration
	// Metrics, when set, records enqueue ack latency, queue wait and
	// sheds under MetricsPath.
	Metrics *pipeline.Metrics
	// Observer, when set, receives every queue event.
	Observer func(Event)
}

type tenantQueue struct {
	name    string
	weight  int
	classes [numClasses][]*Entry
	queued  int
	// reserved counts Reserve slots not yet committed or aborted; they
	// hold quota so a burst of concurrent Submits cannot overshoot.
	reserved int
	running  int
	// burst is the tenant's remaining deficit while the round-robin
	// pointer rests on it (unit cost, so deficit == dequeues left).
	burst    int
	active   bool
	shed     uint64
	enqueues uint64
	dequeues uint64
}

func (t *tenantQueue) head() (*Entry, int) {
	for r := 0; r < numClasses; r++ {
		if len(t.classes[r]) > 0 {
			return t.classes[r][0], r
		}
	}
	return nil, -1
}

// Queue is the admission queue. All methods are safe for concurrent
// use; Next blocks until an entry is eligible or ctx ends.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	seq     uint64
	tenants map[string]*tenantQueue
	// active is the DRR ring: tenants with parked work, in arrival
	// order; rr is the pointer. Drained tenants are unlinked lazily.
	active   []*tenantQueue
	rr       int
	depth    int
	reserved int
	shed     uint64
	enqueues uint64
	dequeues uint64
	// wake is closed and replaced whenever an entry may have become
	// eligible; Next waits on the channel it saw under the lock.
	wake chan struct{}
}

// New builds a queue.
func New(cfg Config) *Queue {
	if cfg.DefaultWeight < 1 {
		cfg.DefaultWeight = 1
	}
	if cfg.AnonymousTenant == "" {
		cfg.AnonymousTenant = "anonymous"
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &Queue{
		cfg:     cfg,
		tenants: make(map[string]*tenantQueue),
		wake:    make(chan struct{}),
	}
}

// TenantOf maps an authenticated principal name to its tenant bucket;
// the empty principal falls back to the configured anonymous tenant.
func (q *Queue) TenantOf(principal string) string {
	if principal == "" {
		return q.cfg.AnonymousTenant
	}
	return principal
}

func (q *Queue) tenant(name string) *tenantQueue {
	t, ok := q.tenants[name]
	if !ok {
		w := q.cfg.DefaultWeight
		if cw, ok := q.cfg.Weights[name]; ok {
			w = cw
		}
		if w < 1 {
			w = 1
		}
		t = &tenantQueue{name: name, weight: w}
		q.tenants[name] = t
	}
	return t
}

func (q *Queue) signal() {
	close(q.wake)
	q.wake = make(chan struct{})
}

func (q *Queue) link(t *tenantQueue) {
	if !t.active {
		t.active = true
		q.active = append(q.active, t)
	}
}

// Reservation holds an admitted-but-not-yet-journaled slot: quota is
// charged at Reserve so concurrent Submits cannot overshoot the bounds
// while their journal writes are in flight. Exactly one of Commit or
// Abort must be called.
type Reservation struct {
	q      *Queue
	t      *tenantQueue
	Seq    uint64
	Tenant string
	Class  string
	start  time.Time
	done   bool
}

// Reserve checks the depth bound and the tenant's queued quota, and on
// success charges one slot and allocates the admission sequence number.
// On a full queue it returns a QueueFullFault (with Retry-After cause)
// and records the shed.
func (q *Queue) Reserve(tenant, class string) (*Reservation, error) {
	if !ValidClass(class) {
		return nil, fmt.Errorf("admission: unknown priority class %q", class)
	}
	class = NormalizeClass(class)
	start := time.Now()
	q.mu.Lock()
	t := q.tenant(tenant)
	var reason string
	switch {
	case q.cfg.MaxQueued > 0 && q.depth+q.reserved >= q.cfg.MaxQueued:
		reason = fmt.Sprintf("queue depth bound %d reached", q.cfg.MaxQueued)
	case q.cfg.TenantQueued > 0 && t.queued+t.reserved >= q.cfg.TenantQueued:
		reason = fmt.Sprintf("tenant %s queued quota %d reached", tenant, q.cfg.TenantQueued)
	}
	if reason != "" {
		t.shed++
		q.shed++
		depth := q.depth
		q.mu.Unlock()
		if q.cfg.Metrics != nil {
			q.cfg.Metrics.Record(pipeline.Key{Path: MetricsPath, Action: ActionShed}, time.Since(start), true)
		}
		if q.cfg.Observer != nil {
			q.cfg.Observer(Event{Kind: EventShed, Tenant: tenant, Class: class, Depth: depth})
		}
		return nil, queueFullFault(reason, q.cfg.RetryAfter)
	}
	t.reserved++
	q.reserved++
	q.seq++
	seq := q.seq
	q.mu.Unlock()
	return &Reservation{q: q, t: t, Seq: seq, Tenant: tenant, Class: class, start: start}, nil
}

// Commit parks the entry (its journal write has succeeded) and returns
// its 1-based position within the tenant's backlog. The entry's
// Tenant, Class and Seq are taken from the reservation.
func (r *Reservation) Commit(e Entry) (Entry, int) {
	q := r.q
	e.Tenant, e.Class, e.Seq = r.Tenant, r.Class, r.Seq
	if e.Enqueued.IsZero() {
		e.Enqueued = time.Now()
	}
	rank, _ := classRank(e.Class)
	q.mu.Lock()
	if r.done {
		q.mu.Unlock()
		panic("admission: reservation already settled")
	}
	r.done = true
	r.t.reserved--
	q.reserved--
	ec := &e
	r.t.classes[rank] = append(r.t.classes[rank], ec)
	r.t.queued++
	r.t.enqueues++
	q.depth++
	q.enqueues++
	q.link(r.t)
	pos := 0
	for rk := 0; rk <= rank; rk++ {
		pos += len(r.t.classes[rk])
	}
	depth := q.depth
	q.signal()
	q.mu.Unlock()
	if q.cfg.Metrics != nil {
		q.cfg.Metrics.Record(pipeline.Key{Path: MetricsPath, Action: ActionEnqueue}, time.Since(r.start), false)
	}
	if q.cfg.Observer != nil {
		q.cfg.Observer(Event{Kind: EventEnqueue, Tenant: e.Tenant, Class: e.Class, Name: e.Name, Seq: e.Seq, Depth: depth})
	}
	return e, pos
}

// Abort releases a reservation whose journal write failed.
func (r *Reservation) Abort() {
	q := r.q
	q.mu.Lock()
	defer q.mu.Unlock()
	if r.done {
		panic("admission: reservation already settled")
	}
	r.done = true
	r.t.reserved--
	q.reserved--
}

// Requeue re-parks a recovered or retried entry, bypassing quotas (it
// was already acked). Entries are kept in sequence order within their
// class so replaying a journal in any order rebuilds the same queue.
func (q *Queue) Requeue(e Entry) {
	e.Class = NormalizeClass(e.Class)
	rank, ok := classRank(e.Class)
	if !ok {
		rank = 1
	}
	if e.Enqueued.IsZero() {
		e.Enqueued = time.Now()
	}
	q.mu.Lock()
	if e.Seq > q.seq {
		q.seq = e.Seq
	}
	t := q.tenant(e.Tenant)
	ec := &e
	cls := t.classes[rank]
	at := sort.Search(len(cls), func(i int) bool { return cls[i].Seq > e.Seq })
	cls = append(cls, nil)
	copy(cls[at+1:], cls[at:])
	cls[at] = ec
	t.classes[rank] = cls
	t.queued++
	t.enqueues++
	q.depth++
	q.enqueues++
	q.link(t)
	depth := q.depth
	q.signal()
	q.mu.Unlock()
	if q.cfg.Observer != nil {
		q.cfg.Observer(Event{Kind: EventEnqueue, Tenant: e.Tenant, Class: e.Class, Name: e.Name, Seq: e.Seq, Depth: depth})
	}
}

// eligible reports whether t may dispatch another set right now.
func (q *Queue) eligible(t *tenantQueue) bool {
	if t.queued == 0 {
		return false
	}
	return q.cfg.TenantRunning <= 0 || t.running < q.cfg.TenantRunning
}

// pick runs one deficit-round-robin step under the lock. Unit cost per
// set means the pointer grants each tenant up to `weight` consecutive
// dequeues per visit, then moves on; tenants at their running cap are
// skipped without losing their turn, and drained tenants are unlinked.
func (q *Queue) pick() (Entry, bool) {
	for scanned := 0; scanned < len(q.active); {
		if q.rr >= len(q.active) {
			q.rr = 0
		}
		t := q.active[q.rr]
		if t.queued == 0 {
			t.active = false
			t.burst = 0
			q.active = append(q.active[:q.rr], q.active[q.rr+1:]...)
			continue
		}
		if !q.eligible(t) {
			t.burst = 0
			q.rr++
			scanned++
			continue
		}
		if t.burst <= 0 {
			t.burst = t.weight
		}
		e, rank := t.head()
		t.classes[rank] = t.classes[rank][1:]
		t.queued--
		t.running++
		t.burst--
		q.depth--
		q.dequeues++
		t.dequeues++
		if t.burst == 0 || t.queued == 0 {
			q.rr++
		}
		return *e, true
	}
	return Entry{}, false
}

// Next blocks until an entry is eligible, dequeues it fair-share, and
// charges the tenant's running count (released by Done).
func (q *Queue) Next(ctx context.Context) (Entry, error) {
	for {
		q.mu.Lock()
		e, ok := q.pick()
		depth := q.depth
		wake := q.wake
		q.mu.Unlock()
		if ok {
			if q.cfg.Metrics != nil {
				q.cfg.Metrics.Record(pipeline.Key{Path: MetricsPath, Action: ActionDequeue}, time.Since(e.Enqueued), false)
			}
			if q.cfg.Observer != nil {
				q.cfg.Observer(Event{Kind: EventDequeue, Tenant: e.Tenant, Class: e.Class, Name: e.Name, Seq: e.Seq, Depth: depth})
			}
			return e, nil
		}
		select {
		case <-ctx.Done():
			return Entry{}, ctx.Err()
		case <-wake:
		}
	}
}

// AtRunningCap reports whether the tenant's running quota is exhausted
// — the signal the scheduler's preemption hook keys on. Always false
// when no running bound is configured.
func (q *Queue) AtRunningCap(tenant string) bool {
	if q.cfg.TenantRunning <= 0 {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tenants[tenant]
	return ok && t.running >= q.cfg.TenantRunning
}

// Done releases one running slot for the tenant (terminal set, cancel,
// or shard loss) and wakes the dequeue loop.
func (q *Queue) Done(tenant string) {
	q.mu.Lock()
	t := q.tenant(tenant)
	if t.running > 0 {
		t.running--
	}
	q.signal()
	q.mu.Unlock()
}

// AdoptRunning charges a running slot without a dequeue — recovery uses
// it so sets already dispatched before a crash count toward the
// tenant's running cap.
func (q *Queue) AdoptRunning(tenant string) {
	q.mu.Lock()
	q.tenant(tenant).running++
	q.mu.Unlock()
}

// Remove unparks a queued entry (cancelled or destroyed while waiting).
// It reports whether the entry was still queued.
func (q *Queue) Remove(tenant string, seq uint64) bool {
	q.mu.Lock()
	t, ok := q.tenants[tenant]
	if !ok {
		q.mu.Unlock()
		return false
	}
	for rank := range t.classes {
		for i, e := range t.classes[rank] {
			if e.Seq == seq {
				t.classes[rank] = append(t.classes[rank][:i], t.classes[rank][i+1:]...)
				t.queued--
				q.depth--
				depth := q.depth
				name, class := e.Name, e.Class
				q.mu.Unlock()
				if q.cfg.Observer != nil {
					q.cfg.Observer(Event{Kind: EventRemove, Tenant: tenant, Class: class, Name: name, Seq: seq, Depth: depth})
				}
				return true
			}
		}
	}
	q.mu.Unlock()
	return false
}

// Position returns the 1-based tenant-local position of a queued entry
// (entries of the same or higher priority class ahead of it, plus one),
// or 0 when it is no longer queued.
func (q *Queue) Position(tenant string, seq uint64) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tenants[tenant]
	if !ok {
		return 0
	}
	pos := 0
	for rank := range t.classes {
		for _, e := range t.classes[rank] {
			pos++
			if e.Seq == seq {
				return pos
			}
		}
	}
	return 0
}

// TenantStats is one tenant's queue counters.
type TenantStats struct {
	Tenant   string
	Weight   int
	Queued   int
	Running  int
	Shed     uint64
	Enqueues uint64
	Dequeues uint64
}

// QueueStats is a point-in-time snapshot of the whole queue.
type QueueStats struct {
	Depth    int
	Reserved int
	Shed     uint64
	Enqueues uint64
	Dequeues uint64
	Tenants  []TenantStats
}

// Stats snapshots the queue, tenants sorted by name.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStats{
		Depth:    q.depth,
		Reserved: q.reserved,
		Shed:     q.shed,
		Enqueues: q.enqueues,
		Dequeues: q.dequeues,
	}
	for _, t := range q.tenants {
		st.Tenants = append(st.Tenants, TenantStats{
			Tenant:   t.name,
			Weight:   t.weight,
			Queued:   t.queued,
			Running:  t.running,
			Shed:     t.shed,
			Enqueues: t.enqueues,
			Dequeues: t.dequeues,
		})
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

// Dump writes a human-readable snapshot, one tenant per line — the
// admission half of the daemons' metrics dump, next to the /wal table.
func (q *Queue) Dump(w io.Writer) {
	st := q.Stats()
	fmt.Fprintf(w, "admission: depth=%d reserved=%d enqueues=%d dequeues=%d shed=%d\n",
		st.Depth, st.Reserved, st.Enqueues, st.Dequeues, st.Shed)
	for _, t := range st.Tenants {
		fmt.Fprintf(w, "  tenant %-16s weight=%d queued=%d running=%d enq=%d deq=%d shed=%d\n",
			t.Tenant, t.Weight, t.Queued, t.Running, t.Enqueues, t.Dequeues, t.Shed)
	}
}
