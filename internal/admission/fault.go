package admission

import (
	"errors"
	"time"

	"uvacg/internal/wsrf"
)

// QueueFullFaultCode is the WS-BaseFaults ErrorCode Submit returns when
// admission sheds a request: the depth bound or the tenant's queued
// quota is exhausted. The fault chains a RetryAfter cause whose
// description is a Go duration — the server's backoff hint.
const QueueFullFaultCode = "QueueFullFault"

// retryAfterCode tags the cause fault carrying the backoff hint.
const retryAfterCode = "RetryAfter"

// queueFullFault builds the typed shed fault.
func queueFullFault(reason string, retryAfter time.Duration) *wsrf.BaseFault {
	f := wsrf.NewBaseFault(QueueFullFaultCode, "submission shed: %s", reason)
	if retryAfter > 0 {
		f.Cause = wsrf.NewBaseFault(retryAfterCode, "%s", retryAfter)
	}
	return f
}

// faultFrom digs the BaseFault out of err, whether err is the fault
// itself (server side) or a SOAP fault carrying one (client side).
func faultFrom(err error) *wsrf.BaseFault {
	var bf *wsrf.BaseFault
	if errors.As(err, &bf) {
		return bf
	}
	if bf, ok := wsrf.BaseFaultFromError(err); ok {
		return bf
	}
	return nil
}

// IsQueueFull reports whether err is (or carries) a QueueFullFault.
func IsQueueFull(err error) bool {
	bf := faultFrom(err)
	return bf != nil && bf.ErrorCode == QueueFullFaultCode
}

// RetryAfterHint extracts the server's backoff hint from a
// QueueFullFault's cause chain. ok is false when err is not a queue
// fault or carries no parseable hint.
func RetryAfterHint(err error) (time.Duration, bool) {
	bf := faultFrom(err)
	if bf == nil || bf.ErrorCode != QueueFullFaultCode {
		return 0, false
	}
	for c := bf.Cause; c != nil; c = c.Cause {
		if c.ErrorCode != retryAfterCode {
			continue
		}
		if d, err := time.ParseDuration(c.Description); err == nil && d > 0 {
			return d, true
		}
	}
	return 0, false
}
