package admission

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"uvacg/internal/pipeline"
)

func mustNext(t *testing.T, q *Queue) Entry {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e, err := q.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return e
}

func enqueue(t *testing.T, q *Queue, tenant, class, name string) Entry {
	t.Helper()
	r, err := q.Reserve(tenant, class)
	if err != nil {
		t.Fatalf("Reserve(%s): %v", tenant, err)
	}
	e, _ := r.Commit(Entry{ID: name, Name: name})
	return e
}

func TestClassValidation(t *testing.T) {
	for _, c := range []string{"", ClassInteractive, ClassBatch, ClassScavenger} {
		if !ValidClass(c) {
			t.Errorf("ValidClass(%q) = false", c)
		}
	}
	if ValidClass("platinum") {
		t.Error("ValidClass(platinum) = true")
	}
	if _, err := New(Config{}).Reserve("a", "platinum"); err == nil {
		t.Error("Reserve with unknown class succeeded")
	}
}

func TestFIFOWithinTenant(t *testing.T) {
	q := New(Config{})
	for i := 0; i < 4; i++ {
		enqueue(t, q, "alice", "", fmt.Sprintf("set-%d", i))
	}
	for i := 0; i < 4; i++ {
		if e := mustNext(t, q); e.Name != fmt.Sprintf("set-%d", i) {
			t.Fatalf("dequeue %d = %s", i, e.Name)
		}
	}
}

func TestClassPriorityWithinTenant(t *testing.T) {
	q := New(Config{})
	enqueue(t, q, "alice", ClassScavenger, "scav")
	enqueue(t, q, "alice", ClassBatch, "batch")
	enqueue(t, q, "alice", ClassInteractive, "inter")
	want := []string{"inter", "batch", "scav"}
	for _, w := range want {
		if e := mustNext(t, q); e.Name != w {
			t.Fatalf("got %s, want %s", e.Name, w)
		}
	}
}

func TestGlobalDepthShedsWithRetryAfter(t *testing.T) {
	q := New(Config{MaxQueued: 2, RetryAfter: 250 * time.Millisecond})
	enqueue(t, q, "a", "", "s1")
	enqueue(t, q, "b", "", "s2")
	_, err := q.Reserve("c", "")
	if err == nil {
		t.Fatal("Reserve over depth bound succeeded")
	}
	if !IsQueueFull(err) {
		t.Fatalf("not a QueueFullFault: %v", err)
	}
	d, ok := RetryAfterHint(err)
	if !ok || d != 250*time.Millisecond {
		t.Fatalf("RetryAfterHint = %v, %v", d, ok)
	}
	if st := q.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d", st.Shed)
	}
}

func TestTenantQuotaShedsOnlyThatTenant(t *testing.T) {
	q := New(Config{TenantQueued: 1})
	enqueue(t, q, "a", "", "a1")
	if _, err := q.Reserve("a", ""); !IsQueueFull(err) {
		t.Fatalf("tenant-quota shed missing: %v", err)
	}
	enqueue(t, q, "b", "", "b1") // other tenants unaffected
}

func TestReservationHoldsQuotaAndAbortReleases(t *testing.T) {
	q := New(Config{MaxQueued: 1})
	r, err := q.Reserve("a", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Reserve("a", ""); !IsQueueFull(err) {
		t.Fatalf("reservation did not hold quota: %v", err)
	}
	r.Abort()
	enqueue(t, q, "a", "", "s1")
}

func TestWeightedFairShare(t *testing.T) {
	q := New(Config{Weights: map[string]int{"heavy": 3}})
	for i := 0; i < 6; i++ {
		enqueue(t, q, "heavy", "", fmt.Sprintf("h%d", i))
	}
	for i := 0; i < 2; i++ {
		enqueue(t, q, "light", "", fmt.Sprintf("l%d", i))
	}
	var order []string
	for i := 0; i < 8; i++ {
		order = append(order, mustNext(t, q).Tenant)
	}
	// DRR with unit cost: heavy gets up to 3 per visit, light 1.
	want := []string{"heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestRunningCapSkipsTenantUntilDone(t *testing.T) {
	q := New(Config{TenantRunning: 1})
	enqueue(t, q, "a", "", "a1")
	enqueue(t, q, "a", "", "a2")
	enqueue(t, q, "b", "", "b1")
	if e := mustNext(t, q); e.Name != "a1" {
		t.Fatalf("first = %s", e.Name)
	}
	// a is at its running cap; b drains past it.
	if e := mustNext(t, q); e.Name != "b1" {
		t.Fatalf("second = %s", e.Name)
	}
	// a2 stays parked until a1 completes.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if _, err := q.Next(ctx); err == nil {
		t.Fatal("capped tenant dequeued")
	}
	cancel()
	q.Done("a")
	if e := mustNext(t, q); e.Name != "a2" {
		t.Fatal("a2 not released after Done")
	}
}

func TestAdoptRunningCountsTowardCap(t *testing.T) {
	q := New(Config{TenantRunning: 1})
	q.AdoptRunning("a")
	enqueue(t, q, "a", "", "a1")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := q.Next(ctx); err == nil {
		t.Fatal("adopted running set did not hold the cap")
	}
	q.Done("a")
	if e := mustNext(t, q); e.Name != "a1" {
		t.Fatal("a1 not released")
	}
}

func TestRequeueRestoresSeqOrderAndBumpsCounter(t *testing.T) {
	q := New(Config{})
	q.Requeue(Entry{Name: "late", Tenant: "a", Seq: 7})
	q.Requeue(Entry{Name: "early", Tenant: "a", Seq: 3})
	if e := mustNext(t, q); e.Name != "early" {
		t.Fatalf("first = %s", e.Name)
	}
	if e := mustNext(t, q); e.Name != "late" {
		t.Fatal("late lost")
	}
	// New reservations continue above the replayed maximum.
	e := enqueue(t, q, "a", "", "new")
	if e.Seq <= 7 {
		t.Fatalf("seq %d not bumped past replayed 7", e.Seq)
	}
}

func TestRemoveAndPosition(t *testing.T) {
	q := New(Config{})
	e1 := enqueue(t, q, "a", "", "s1")
	e2 := enqueue(t, q, "a", "", "s2")
	if p := q.Position("a", e2.Seq); p != 2 {
		t.Fatalf("position = %d", p)
	}
	if !q.Remove("a", e1.Seq) {
		t.Fatal("Remove failed")
	}
	if q.Remove("a", e1.Seq) {
		t.Fatal("double Remove succeeded")
	}
	if p := q.Position("a", e2.Seq); p != 1 {
		t.Fatalf("position after remove = %d", p)
	}
	if e := mustNext(t, q); e.Name != "s2" {
		t.Fatalf("dequeued %s", e.Name)
	}
	if p := q.Position("a", e2.Seq); p != 0 {
		t.Fatalf("position after dequeue = %d", p)
	}
}

func TestNextBlocksUntilCommit(t *testing.T) {
	q := New(Config{})
	got := make(chan Entry, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e, err := q.Next(ctx)
		if err == nil {
			got <- e
		}
	}()
	time.Sleep(20 * time.Millisecond)
	enqueue(t, q, "a", "", "s1")
	select {
	case e := <-got:
		if e.Name != "s1" {
			t.Fatalf("got %s", e.Name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke")
	}
}

func TestTenantOfFallsBackToAnonymous(t *testing.T) {
	q := New(Config{AnonymousTenant: "guest"})
	if got := q.TenantOf(""); got != "guest" {
		t.Fatalf("TenantOf(\"\") = %s", got)
	}
	if got := q.TenantOf("alice"); got != "alice" {
		t.Fatalf("TenantOf(alice) = %s", got)
	}
}

func TestMetricsAndObserverLedger(t *testing.T) {
	m := pipeline.NewMetrics()
	var mu sync.Mutex
	var events []Event
	q := New(Config{MaxQueued: 1, Metrics: m, Observer: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	enqueue(t, q, "a", "", "s1")
	q.Reserve("a", "") // shed
	mustNext(t, q)
	snap := m.Snapshot()
	if s := snap[pipeline.Key{Path: MetricsPath, Action: ActionEnqueue}]; s.Calls != 1 {
		t.Fatalf("enqueue metric calls = %d", s.Calls)
	}
	if s := snap[pipeline.Key{Path: MetricsPath, Action: ActionShed}]; s.Calls != 1 || s.Faults != 1 {
		t.Fatalf("shed metric = %+v", s)
	}
	if s := snap[pipeline.Key{Path: MetricsPath, Action: ActionDequeue}]; s.Calls != 1 {
		t.Fatalf("dequeue metric calls = %d", s.Calls)
	}
	mu.Lock()
	defer mu.Unlock()
	kinds := []EventKind{EventEnqueue, EventShed, EventDequeue}
	if len(events) != len(kinds) {
		t.Fatalf("events = %+v", events)
	}
	for i, k := range kinds {
		if events[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, events[i].Kind, k)
		}
	}
}

// TestConcurrentStormDrainsCompletely hammers the queue from many
// tenants while a consumer drains it; every committed entry must come
// out exactly once.
func TestConcurrentStormDrainsCompletely(t *testing.T) {
	q := New(Config{TenantRunning: 4})
	const tenants, perTenant = 8, 25
	var wg sync.WaitGroup
	var committed sync.Map
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := fmt.Sprintf("t%d", i)
			for j := 0; j < perTenant; j++ {
				r, err := q.Reserve(tn, "")
				if err != nil {
					t.Errorf("Reserve: %v", err)
					return
				}
				e, _ := r.Commit(Entry{Name: fmt.Sprintf("%s/%d", tn, j)})
				committed.Store(e.Seq, e.Name)
			}
		}(i)
	}
	var dequeued sync.Map
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for n := 0; n < tenants*perTenant; n++ {
			e, err := q.Next(ctx)
			if err != nil {
				t.Errorf("Next: %v", err)
				return
			}
			if _, dup := dequeued.LoadOrStore(e.Seq, e.Name); dup {
				t.Errorf("seq %d dequeued twice", e.Seq)
				return
			}
			q.Done(e.Tenant)
		}
	}()
	wg.Wait()
	<-done
	missing := 0
	committed.Range(func(seq, _ any) bool {
		if _, ok := dequeued.Load(seq); !ok {
			missing++
		}
		return true
	})
	if missing != 0 {
		t.Fatalf("%d committed entries never dequeued", missing)
	}
	if st := q.Stats(); st.Depth != 0 || st.Reserved != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}
