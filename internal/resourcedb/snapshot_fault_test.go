package resourcedb

import (
	"bytes"
	"fmt"
	"testing"
)

// snapshotBytes builds a small two-table snapshot for mutation.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	s := NewStore()
	jobs := s.MustTable("jobs", StructuredCodec{})
	blobs := s.MustTable("blobs", BlobCodec{})
	for i := 0; i < 6; i++ {
		if err := jobs.Put(fmt.Sprintf("j%d", i), jobDoc("Running", i)); err != nil {
			t.Fatal(err)
		}
		if err := blobs.Put(fmt.Sprintf("b%d", i), jobDoc("Idle", i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loadTarget is a store with pre-existing content, so every failed Load
// can be checked for the leave-untouched guarantee.
func loadTarget(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	old := s.MustTable("existing", BlobCodec{})
	if err := old.Put("keep", jobDoc("Held", 7)); err != nil {
		t.Fatal(err)
	}
	return s
}

// assertUntouched verifies the target store still holds exactly its
// pre-Load content after a failed Load.
func assertUntouched(t *testing.T, s *Store, ctx string) {
	t.Helper()
	tbl, ok := s.Table("existing")
	if !ok {
		t.Fatalf("%s: failed Load dropped existing table", ctx)
	}
	doc, ok, err := tbl.Get("keep")
	if err != nil || !ok || !doc.Equal(jobDoc("Held", 7)) {
		t.Fatalf("%s: failed Load mutated existing row: %v %v", ctx, ok, err)
	}
	if names := s.TableNames(); len(names) != 1 {
		t.Fatalf("%s: failed Load left partial tables: %v", ctx, names)
	}
}

// TestLoadTruncatedSnapshotEveryPoint feeds Load every possible prefix
// of a valid snapshot. Anything short of the full stream must fail with
// a clean error and leave the store's existing tables untouched — and
// must never panic or abort (the length-cap guard).
func TestLoadTruncatedSnapshotEveryPoint(t *testing.T) {
	data := snapshotBytes(t)
	for size := 0; size < len(data); size++ {
		s := loadTarget(t)
		err := s.Load(bytes.NewReader(data[:size]))
		if err == nil {
			t.Fatalf("size %d: truncated snapshot accepted", size)
		}
		assertUntouched(t, s, fmt.Sprintf("size %d", size))
	}
	// The full stream still loads, replacing everything.
	s := loadTarget(t)
	if err := s.Load(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Table("existing"); ok {
		t.Fatal("successful Load kept stale table")
	}
	jobs, ok := s.Table("jobs")
	if !ok || jobs.Len() != 6 {
		t.Fatalf("full load: jobs = %v", jobs)
	}
}

// TestLoadBitFlippedSnapshotEveryByte flips each byte of a valid
// snapshot and asserts Load either fails cleanly (store untouched) or —
// when the flip lands in row text the codecs don't validate — succeeds
// as a complete replacement. It must never panic, abort, or leave a
// half-loaded store.
func TestLoadBitFlippedSnapshotEveryByte(t *testing.T) {
	data := snapshotBytes(t)
	for pos := 0; pos < len(data); pos++ {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[pos] ^= mask
			s := loadTarget(t)
			err := s.Load(bytes.NewReader(mut))
			ctx := fmt.Sprintf("pos %d mask %#x", pos, mask)
			if err != nil {
				assertUntouched(t, s, ctx)
				continue
			}
			// A tolerated flip must still have replaced the store wholesale.
			if _, ok := s.Table("existing"); ok {
				t.Fatalf("%s: load succeeded but kept stale table", ctx)
			}
		}
	}
}

// TestLoadHostileLengths: length fields claiming absurd sizes must fail
// with an error, not abort the process inside make().
func TestLoadHostileLengths(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01} // uvarint ~2^63
	cases := map[string][]byte{
		// ntables claims 2^63: must run out of stream, not allocate.
		"table-count": append([]byte(snapshotMagic), huge...),
		// First table's name claims 2^63 bytes.
		"name-length": append([]byte(snapshotMagic+"\x01"), huge...),
	}
	// Row length claiming 2^63: build a valid prefix then lie.
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.WriteByte(1)            // one table
	buf.WriteString("\x04jobs") // name
	buf.WriteString("\x04blob") // codec
	buf.WriteByte(1)            // one row
	buf.WriteString("\x02j1")   // id
	buf.Write(huge)             // row length
	cases["row-length"] = buf.Bytes()

	for name, data := range cases {
		s := loadTarget(t)
		if err := s.Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: hostile snapshot accepted", name)
		}
		assertUntouched(t, s, name)
	}
}

// FuzzStoreLoad is the open-ended version of the tests above: arbitrary
// bytes must never panic Load, and any failure must leave existing
// tables intact.
func FuzzStoreLoad(f *testing.F) {
	seed := func() []byte {
		s := NewStore()
		tbl := s.MustTable("jobs", StructuredCodec{})
		tbl.Put("j1", jobDoc("Running", 1))
		var buf bytes.Buffer
		s.Save(&buf)
		return buf.Bytes()
	}()
	f.Add(seed)
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewStore()
		old := s.MustTable("existing", BlobCodec{})
		if err := old.Put("keep", jobDoc("Held", 7)); err != nil {
			t.Fatal(err)
		}
		if err := s.Load(bytes.NewReader(data)); err != nil {
			if tbl, ok := s.Table("existing"); !ok || !tbl.Exists("keep") {
				t.Fatal("failed Load mutated the store")
			}
		}
	})
}
