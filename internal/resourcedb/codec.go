// Package resourcedb is the embedded database that backs WS-Resources,
// standing in for the ODBC store (MS SQL/MSDE/MySQL) WSRF.NET uses. A
// Store holds named Tables; each table row is one resource's state
// document, serialized by the table's codec.
//
// Two codecs are provided because the paper's §5 discussion hinges on the
// trade-off between them: StructuredCodec flattens documents into typed
// "columns" that can be indexed and queried in the database (fixed
// relational columns), while BlobCodec stores the document as opaque
// bytes — "effective for loading and storing, but makes it very
// difficult to query them in the database". Benchmark E3 quantifies
// exactly this trade-off.
package resourcedb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"

	"uvacg/internal/soap/fastcodec"
	"uvacg/internal/xmlutil"
)

// Codec serializes resource state documents into row bytes.
type Codec interface {
	// Name identifies the codec in snapshots ("structured", "blob").
	Name() string
	// Encode serializes a state document.
	Encode(doc *xmlutil.Element) ([]byte, error)
	// Decode reverses Encode.
	Decode(data []byte) (*xmlutil.Element, error)
	// Indexable reports whether top-level properties can be read without
	// a full document decode (enables query indexes).
	Indexable() bool
}

// BlobCodec stores the document as its XML serialization: one opaque
// column. Queries must decode every row.
type BlobCodec struct{}

// Name implements Codec.
func (BlobCodec) Name() string { return "blob" }

// Indexable implements Codec.
func (BlobCodec) Indexable() bool { return false }

// Encode implements Codec. Blob rows ride the fast-path codec when the
// document fits its recognized shape — rows are written on every
// journaled Put, so this is squarely on the WAL hot path — and fall
// back to encoding/xml otherwise. Both encodings decode identically
// under either decoder, so rows written before and after the fast path
// (or with it toggled off) interoperate.
func (BlobCodec) Encode(doc *xmlutil.Element) ([]byte, error) {
	if fastcodec.Enabled() {
		if out, ok := fastcodec.AppendElement(nil, doc); ok {
			return out, nil
		}
	}
	return xmlutil.MarshalElement(doc)
}

// Decode implements Codec.
func (BlobCodec) Decode(data []byte) (*xmlutil.Element, error) {
	if fastcodec.Enabled() {
		if root, ok := fastcodec.Decode(data); ok {
			return root, nil
		}
	}
	return xmlutil.UnmarshalElement(data)
}

// StructuredCodec flattens the document into (path, text, attrs) tuples —
// the relational-columns shape. Arbitrary nesting is supported by path
// keys, and top-level leaf properties are recoverable without decoding
// the whole row, which is what makes indexes possible.
type StructuredCodec struct{}

// Name implements Codec.
func (StructuredCodec) Name() string { return "structured" }

// Indexable implements Codec.
func (StructuredCodec) Indexable() bool { return true }

// Wire format: a sequence of records, each
//
//	depth  uvarint      nesting depth (0 = document root)
//	name   lenstr       Clark-notation QName
//	text   lenstr
//	nattrs uvarint, then nattrs × (lenstr name, lenstr value)
//
// written in document order; the tree is rebuilt from depths.

func writeLenStr(buf *bytes.Buffer, s string) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s)))
	buf.Write(tmp[:n])
	buf.WriteString(s)
}

func readLenStr(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > uint64(r.Len()) {
		return "", fmt.Errorf("resourcedb: corrupt row: string length %d exceeds remaining %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := r.Read(b); err != nil {
		return "", err
	}
	return string(b), nil
}

// Encode implements Codec.
func (StructuredCodec) Encode(doc *xmlutil.Element) ([]byte, error) {
	if doc == nil {
		return nil, fmt.Errorf("resourcedb: nil document")
	}
	var buf bytes.Buffer
	var walk func(e *xmlutil.Element, depth uint64)
	walk = func(e *xmlutil.Element, depth uint64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], depth)
		buf.Write(tmp[:n])
		writeLenStr(&buf, e.Name.String())
		writeLenStr(&buf, e.Text)
		n = binary.PutUvarint(tmp[:], uint64(len(e.Attrs)))
		buf.Write(tmp[:n])
		// Deterministic attr order: reuse canonical XML marshal ordering
		// by sorting names.
		names := make([]xmlutil.QName, 0, len(e.Attrs))
		for k := range e.Attrs {
			names = append(names, k)
		}
		sortQNames(names)
		for _, k := range names {
			writeLenStr(&buf, k.String())
			writeLenStr(&buf, e.Attrs[k])
		}
		for _, c := range e.Children {
			walk(c, depth+1)
		}
	}
	walk(doc, 0)
	return buf.Bytes(), nil
}

func sortQNames(names []xmlutil.QName) {
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && qnameLess(names[j], names[j-1]); j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
}

func qnameLess(a, b xmlutil.QName) bool {
	if a.Space != b.Space {
		return a.Space < b.Space
	}
	return a.Local < b.Local
}

// Decode implements Codec.
func (StructuredCodec) Decode(data []byte) (*xmlutil.Element, error) {
	r := bytes.NewReader(data)
	var root *xmlutil.Element
	// stack[d] is the most recent element at depth d.
	var stack []*xmlutil.Element
	for r.Len() > 0 {
		depth, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("resourcedb: corrupt row: %w", err)
		}
		name, err := readLenStr(r)
		if err != nil {
			return nil, err
		}
		text, err := readLenStr(r)
		if err != nil {
			return nil, err
		}
		nattrs, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		q, err := xmlutil.ParseQName(name)
		if err != nil {
			return nil, err
		}
		e := &xmlutil.Element{Name: q, Text: text}
		for i := uint64(0); i < nattrs; i++ {
			an, err := readLenStr(r)
			if err != nil {
				return nil, err
			}
			av, err := readLenStr(r)
			if err != nil {
				return nil, err
			}
			aq, err := xmlutil.ParseQName(an)
			if err != nil {
				return nil, err
			}
			e.SetAttr(aq, av)
		}
		switch {
		case depth == 0:
			if root != nil {
				return nil, fmt.Errorf("resourcedb: corrupt row: multiple roots")
			}
			root = e
			stack = stack[:0]
			stack = append(stack, e)
		case int(depth) > len(stack):
			return nil, fmt.Errorf("resourcedb: corrupt row: depth jump to %d", depth)
		default:
			parent := stack[depth-1]
			parent.Children = append(parent.Children, e)
			stack = append(stack[:depth], e)
		}
	}
	if root == nil {
		return nil, fmt.Errorf("resourcedb: empty row")
	}
	return root, nil
}

// topLevelProperties extracts the (localName → texts) view of a
// document's direct children used to maintain query indexes.
func topLevelProperties(doc *xmlutil.Element) map[string][]string {
	out := make(map[string][]string, len(doc.Children))
	for _, c := range doc.Children {
		out[c.Name.Local] = append(out[c.Name.Local], strings.TrimSpace(c.Text))
	}
	return out
}
