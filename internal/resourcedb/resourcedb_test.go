package resourcedb

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"uvacg/internal/xmlutil"
)

var nsT = "urn:uvacg:test"

func jobDoc(status string, cpu int) *xmlutil.Element {
	return xmlutil.NewContainer(xmlutil.Q(nsT, "JobState"),
		xmlutil.NewElement(xmlutil.Q(nsT, "Status"), status),
		xmlutil.NewElement(xmlutil.Q(nsT, "CPUTime"), fmt.Sprint(cpu)),
		xmlutil.NewContainer(xmlutil.Q(nsT, "Files"),
			xmlutil.NewElement(xmlutil.Q(nsT, "File"), "in.dat").SetAttr(xmlutil.Q("", "role"), "input"),
			xmlutil.NewElement(xmlutil.Q(nsT, "File"), "out.dat").SetAttr(xmlutil.Q("", "role"), "output"),
		),
	)
}

func codecs() map[string]Codec {
	return map[string]Codec{"structured": StructuredCodec{}, "blob": BlobCodec{}}
}

func TestCodecRoundTrip(t *testing.T) {
	for name, codec := range codecs() {
		t.Run(name, func(t *testing.T) {
			doc := jobDoc("Running", 12)
			data, err := codec.Encode(doc)
			if err != nil {
				t.Fatal(err)
			}
			back, err := codec.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if !doc.Equal(back) {
				t.Fatalf("round trip mismatch:\n%s\n%s", doc, back)
			}
		})
	}
}

func genElement(r *rand.Rand, depth int) *xmlutil.Element {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	ident := func() string {
		n := 1 + r.Intn(8)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(letters[r.Intn(len(letters))])
		}
		return b.String()
	}
	e := &xmlutil.Element{Name: xmlutil.Q("urn:"+ident(), ident())}
	for i := 0; i < r.Intn(3); i++ {
		e.SetAttr(xmlutil.Q("", ident()), ident())
	}
	if depth > 0 && r.Intn(2) == 0 {
		for i, n := 0, 1+r.Intn(4); i < n; i++ {
			e.Children = append(e.Children, genElement(r, depth-1))
		}
	} else {
		e.Text = ident()
	}
	return e
}

// TestCodecRoundTripProperty: both codecs are lossless on arbitrary
// nested documents — the §5 concern that "a service can have an
// arbitrary structure to its Resource state, and yet WSRF.NET must be
// able to operate on it effectively".
func TestCodecRoundTripProperty(t *testing.T) {
	for name, codec := range codecs() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				doc := genElement(r, 4)
				data, err := codec.Encode(doc)
				if err != nil {
					return false
				}
				back, err := codec.Decode(data)
				if err != nil {
					return false
				}
				return doc.Equal(back)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestStructuredCodecRejectsCorruption(t *testing.T) {
	codec := StructuredCodec{}
	data, err := codec.Encode(jobDoc("Running", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decode(nil); err == nil {
		t.Error("empty row accepted")
	}
	if _, err := codec.Decode(data[:len(data)/2]); err == nil {
		t.Error("truncated row accepted")
	}
	if _, err := codec.Encode(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestTablePutGetDelete(t *testing.T) {
	for name, codec := range codecs() {
		t.Run(name, func(t *testing.T) {
			tbl := NewTable("jobs", codec)
			if err := tbl.Put("j1", jobDoc("Running", 5)); err != nil {
				t.Fatal(err)
			}
			doc, ok, err := tbl.Get("j1")
			if err != nil || !ok {
				t.Fatalf("Get: %v %v", ok, err)
			}
			if got := doc.ChildText(xmlutil.Q(nsT, "Status")); got != "Running" {
				t.Errorf("status = %q", got)
			}
			if !tbl.Exists("j1") || tbl.Exists("j2") {
				t.Error("Exists misreports")
			}
			// Overwrite changes visible state.
			if err := tbl.Put("j1", jobDoc("Exited", 30)); err != nil {
				t.Fatal(err)
			}
			doc, _, _ = tbl.Get("j1")
			if got := doc.ChildText(xmlutil.Q(nsT, "Status")); got != "Exited" {
				t.Errorf("after overwrite, status = %q", got)
			}
			if ok, err := tbl.Delete("j1"); err != nil || !ok {
				t.Errorf("delete: %v %v", ok, err)
			}
			if ok, err := tbl.Delete("j1"); err != nil || ok {
				t.Errorf("double delete: %v %v", ok, err)
			}
			if _, ok, _ := tbl.Get("j1"); ok {
				t.Error("row survived delete")
			}
		})
	}
}

func TestTableRejectsEmptyID(t *testing.T) {
	tbl := NewTable("jobs", BlobCodec{})
	if err := tbl.Put("", jobDoc("Running", 1)); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestTableIDsSorted(t *testing.T) {
	tbl := NewTable("jobs", StructuredCodec{})
	for _, id := range []string{"c", "a", "b"} {
		if err := tbl.Put(id, jobDoc("Running", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.IDs(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("IDs = %v", got)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestQueryPropertyBothCodecs(t *testing.T) {
	for name, codec := range codecs() {
		t.Run(name, func(t *testing.T) {
			tbl := NewTable("jobs", codec)
			mustPut := func(id, status string) {
				t.Helper()
				if err := tbl.Put(id, jobDoc(status, 1)); err != nil {
					t.Fatal(err)
				}
			}
			mustPut("j1", "Running")
			mustPut("j2", "Exited")
			mustPut("j3", "Running")
			got, err := tbl.QueryProperty("Status", "Running")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, []string{"j1", "j3"}) {
				t.Fatalf("query = %v", got)
			}
			// Query must track overwrites (index maintenance).
			mustPut("j1", "Exited")
			got, err = tbl.QueryProperty("Status", "Running")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, []string{"j3"}) {
				t.Fatalf("after overwrite, query = %v", got)
			}
			// And deletes.
			if _, err := tbl.Delete("j3"); err != nil {
				t.Fatal(err)
			}
			got, err = tbl.QueryProperty("Status", "Running")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Fatalf("after delete, query = %v", got)
			}
		})
	}
}

func TestScanPredicate(t *testing.T) {
	tbl := NewTable("jobs", BlobCodec{})
	for i := 0; i < 5; i++ {
		if err := tbl.Put(fmt.Sprintf("j%d", i), jobDoc("Running", i*10)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tbl.Scan(func(id string, doc *xmlutil.Element) bool {
		return doc.ChildText(xmlutil.Q(nsT, "CPUTime")) >= "20"
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"j2", "j3", "j4"}) {
		t.Fatalf("scan = %v", got)
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tbl := NewTable("jobs", StructuredCodec{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("j%d-%d", g, i)
				if err := tbl.Put(id, jobDoc("Running", i)); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := tbl.Get(id); !ok || err != nil {
					t.Errorf("lost row %s: %v", id, err)
					return
				}
				if _, err := tbl.QueryProperty("Status", "Running"); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 400 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestStoreTables(t *testing.T) {
	s := NewStore()
	tbl, err := s.CreateTable("jobs", StructuredCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("jobs", BlobCodec{}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := s.CreateTable("", BlobCodec{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if got, ok := s.Table("jobs"); !ok || got != tbl {
		t.Fatal("lookup failed")
	}
	if same := s.MustTable("jobs", BlobCodec{}); same != tbl {
		t.Fatal("MustTable should return existing table")
	}
	s.MustTable("dirs", BlobCodec{})
	if got := s.TableNames(); !reflect.DeepEqual(got, []string{"dirs", "jobs"}) {
		t.Fatalf("TableNames = %v", got)
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	jobs := s.MustTable("jobs", StructuredCodec{})
	dirs := s.MustTable("dirs", BlobCodec{})
	for i := 0; i < 10; i++ {
		if err := jobs.Put(fmt.Sprintf("j%d", i), jobDoc("Running", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dirs.Put("d1", xmlutil.NewElement(xmlutil.Q(nsT, "Path"), "/grid/tmp")); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rj, ok := restored.Table("jobs")
	if !ok || rj.Len() != 10 {
		t.Fatalf("jobs table lost: ok=%v", ok)
	}
	if rj.Codec().Name() != "structured" {
		t.Errorf("codec = %q", rj.Codec().Name())
	}
	// Index must be rebuilt on load.
	got, err := rj.QueryProperty("Status", "Running")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("restored query = %v", got)
	}
	rd, _ := restored.Table("dirs")
	doc, ok, err := rd.Get("d1")
	if err != nil || !ok || doc.Text != "/grid/tmp" {
		t.Fatalf("dirs row: %v %v %v", doc, ok, err)
	}
}

func TestStoreSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.db")
	s := NewStore()
	if err := s.MustTable("jobs", BlobCodec{}).Put("j1", jobDoc("Exited", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	tbl, _ := restored.Table("jobs")
	if !tbl.Exists("j1") {
		t.Fatal("row lost through file snapshot")
	}
	// Atomic save leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
}

func TestStoreLoadRejectsGarbage(t *testing.T) {
	s := NewStore()
	if err := s.Load(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
