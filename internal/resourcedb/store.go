package resourcedb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is a named collection of tables — the "database" a WSRF.NET
// deployment points its services at. One store per simulated machine.
type Store struct {
	// journal, when set, is installed on every table the store creates
	// or loads, so all mutations are write-ahead logged (DurableStore).
	journal tableJournal

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{tables: make(map[string]*Table)} }

// CreateTable makes a new table. Creating an existing name is an error;
// services own distinct tables.
func (s *Store) CreateTable(name string, codec Codec) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("resourcedb: empty table name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("resourcedb: table %q already exists", name)
	}
	t := NewTable(name, codec)
	t.journal = s.journal
	s.tables[name] = t
	return t, nil
}

// Table returns an existing table.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, ok
}

// MustTable returns a table, creating it with codec on first use. It is
// the registration-time helper service constructors use.
func (s *Store) MustTable(name string, codec Codec) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[name]; ok {
		return t
	}
	t := NewTable(name, codec)
	t.journal = s.journal
	s.tables[name] = t
	return t
}

// TableNames lists table names, sorted.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot format:
//
//	magic   "UVDB1\n"
//	ntables uvarint
//	per table: lenstr name, lenstr codec, nrows uvarint,
//	           nrows × (lenstr id, lenbytes row)

const snapshotMagic = "UVDB1\n"

// Save writes a point-in-time snapshot of every table.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	tables := make([]*Table, 0, len(names))
	for _, n := range names {
		tables = append(tables, s.tables[n])
	}
	s.mu.RUnlock()

	writeUvarint(bw, uint64(len(tables)))
	for _, t := range tables {
		t.mu.RLock()
		writeSnapStr(bw, t.name)
		writeSnapStr(bw, t.codec.Name())
		writeUvarint(bw, uint64(len(t.rows)))
		ids := make([]string, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			writeSnapStr(bw, id)
			writeUvarint(bw, uint64(len(t.rows[id])))
			bw.Write(t.rows[id])
		}
		t.mu.RUnlock()
	}
	return bw.Flush()
}

// maxSnapshotBytes bounds any single length field read from a snapshot
// (strings and rows). A corrupt or hostile snapshot can claim lengths
// up to 2^64; without the cap, make() on such a claim aborts the
// process instead of returning a clean error.
const maxSnapshotBytes = 64 << 20

// Load replaces the store's contents from a snapshot. The replacement
// is all-or-nothing: the snapshot is decoded into a staging table set
// first, and the store's live tables are swapped only after the whole
// stream parsed cleanly — a corrupt or truncated snapshot returns an
// error and leaves the existing tables untouched.
func (s *Store) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("resourcedb: read snapshot header: %w", err)
	}
	if !bytes.Equal(magic, []byte(snapshotMagic)) {
		return fmt.Errorf("resourcedb: bad snapshot magic %q", magic)
	}
	ntables, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	// Cap the allocation hint only: a lying count still fails cleanly
	// when the stream runs out.
	loaded := make(map[string]*Table, min(ntables, 1024))
	for i := uint64(0); i < ntables; i++ {
		name, err := readSnapStr(br)
		if err != nil {
			return err
		}
		codecName, err := readSnapStr(br)
		if err != nil {
			return err
		}
		codec, err := codecByName(codecName)
		if err != nil {
			return err
		}
		t := NewTable(name, codec)
		t.journal = s.journal
		nrows, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		for j := uint64(0); j < nrows; j++ {
			id, err := readSnapStr(br)
			if err != nil {
				return err
			}
			rowLen, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			if rowLen > maxSnapshotBytes {
				return fmt.Errorf("resourcedb: snapshot row %s/%s claims %d bytes", name, id, rowLen)
			}
			row := make([]byte, rowLen)
			if _, err := io.ReadFull(br, row); err != nil {
				return err
			}
			t.rows[id] = row
			if t.index != nil {
				doc, err := codec.Decode(row)
				if err != nil {
					return fmt.Errorf("resourcedb: snapshot row %s/%s: %w", name, id, err)
				}
				t.indexLocked(id, topLevelProperties(doc))
			}
		}
		loaded[name] = t
	}
	s.mu.Lock()
	s.tables = loaded
	s.mu.Unlock()
	return nil
}

// SaveFile writes a snapshot atomically and durably: write temp, fsync,
// rename, fsync the directory. The directory fsync makes the rename
// itself survive a power loss — callers that delete the data the
// snapshot supersedes (DurableStore.Compact truncating WAL segments)
// rely on the snapshot being on disk once SaveFile returns.
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames and removals within it are
// durable, not just queued in the OS.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadFile loads a snapshot from disk.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

func codecByName(name string) (Codec, error) {
	switch name {
	case "structured":
		return StructuredCodec{}, nil
	case "blob":
		return BlobCodec{}, nil
	}
	return nil, fmt.Errorf("resourcedb: unknown codec %q", name)
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.Write(tmp[:n])
}

func writeSnapStr(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readSnapStr(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxSnapshotBytes {
		return "", fmt.Errorf("resourcedb: snapshot string claims %d bytes", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
