package resourcedb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"uvacg/internal/pipeline"
	"uvacg/internal/wal"
)

func openDurable(t *testing.T, dir string, opts DurableOptions) *DurableStore {
	t.Helper()
	ds, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestDurableRoundTripRestart: puts and deletes made against a durable
// store are all there after close + reopen, decoded through the same
// codecs, with no snapshot ever written (pure log replay).
func TestDurableRoundTripRestart(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Sync: true, CompactBytes: -1})
	jobs := ds.MustTable("jobs", StructuredCodec{})
	dirs := ds.MustTable("directories", BlobCodec{})
	for i := 0; i < 10; i++ {
		if err := jobs.Put(fmt.Sprintf("j%d", i), jobDoc("Running", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dirs.Put("d1", jobDoc("Staged", 0)); err != nil {
		t.Fatal(err)
	}
	if ok, err := jobs.Delete("j3"); err != nil || !ok {
		t.Fatalf("delete j3: %v %v", ok, err)
	}
	if err := jobs.Put("j4", jobDoc("Completed", 4)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2 := openDurable(t, dir, DurableOptions{Sync: true, CompactBytes: -1})
	defer ds2.Close()
	if got := ds2.Stats().ReplayedRecords; got != 13 {
		t.Fatalf("replayed %d records, want 13", got)
	}
	jobs2, ok := ds2.Table("jobs")
	if !ok {
		t.Fatal("jobs table missing after replay")
	}
	if jobs2.Len() != 9 {
		t.Fatalf("jobs.Len() = %d, want 9", jobs2.Len())
	}
	if jobs2.Exists("j3") {
		t.Fatal("deleted row j3 resurrected")
	}
	doc, ok, err := jobs2.Get("j4")
	if err != nil || !ok {
		t.Fatalf("get j4: %v %v", ok, err)
	}
	if !doc.Equal(jobDoc("Completed", 4)) {
		t.Fatalf("j4 replayed as:\n%s", doc)
	}
	// The structured table's property index must be rebuilt by replay.
	ids, err := jobs2.QueryProperty("Status", "Completed")
	if err != nil || len(ids) != 1 || ids[0] != "j4" {
		t.Fatalf("QueryProperty after replay = %v, %v", ids, err)
	}
	if _, ok := ds2.Table("directories"); !ok {
		t.Fatal("blob table missing after replay")
	}
}

// durableOp is one scripted mutation for the crash-point test.
type durableOp struct {
	del bool
	id  string
	cpu int
}

// TestDurableCrashAtEveryWritePoint is the store-level prefix property:
// truncate the WAL at every byte offset, reopen, and the recovered
// table must equal the state after exactly the acknowledged prefix of
// operations — never a torn row, never a phantom.
func TestDurableCrashAtEveryWritePoint(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Sync: true, CompactBytes: -1})
	jobs := ds.MustTable("jobs", StructuredCodec{})

	var ops []durableOp
	for i := 0; i < 12; i++ {
		op := durableOp{id: fmt.Sprintf("j%d", i%5), cpu: i}
		if i%4 == 3 {
			op.del = true
		}
		ops = append(ops, op)
	}
	var frameEnds []int
	for _, op := range ops {
		if op.del {
			if _, err := jobs.Delete(op.id); err != nil {
				t.Fatal(err)
			}
		} else if err := jobs.Put(op.id, jobDoc("Running", op.cpu)); err != nil {
			t.Fatal(err)
		}
		segs, err := wal.ListSegments(dir)
		if err != nil || len(segs) != 1 {
			t.Fatalf("segments: %v %v", segs, err)
		}
		frameEnds = append(frameEnds, int(segs[0].Size))
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := wal.ListSegments(dir)
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}

	// expect[k] = table contents after the first k ops.
	expect := make([]map[string]int, len(ops)+1)
	expect[0] = map[string]int{}
	for k, op := range ops {
		next := make(map[string]int, len(expect[k]))
		for id, cpu := range expect[k] {
			next[id] = cpu
		}
		if op.del {
			delete(next, op.id)
		} else {
			next[op.id] = op.cpu
		}
		expect[k+1] = next
	}

	for size := 0; size <= len(data); size++ {
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, filepath.Base(segs[0].Path)), data[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		ds2, err := OpenDurable(crashDir, DurableOptions{CompactBytes: -1})
		if err != nil {
			t.Fatalf("size %d: reopen: %v", size, err)
		}
		acked := 0
		for _, end := range frameEnds {
			if end <= size {
				acked++
			}
		}
		want := expect[acked]
		tbl, ok := ds2.Table("jobs")
		if !ok {
			if len(want) != 0 || acked != 0 {
				t.Fatalf("size %d: jobs table missing, want %d rows", size, len(want))
			}
			ds2.Close()
			continue
		}
		if tbl.Len() != len(want) {
			t.Fatalf("size %d: %d rows, want %d", size, tbl.Len(), len(want))
		}
		for id, cpu := range want {
			doc, ok, err := tbl.Get(id)
			if err != nil || !ok {
				t.Fatalf("size %d: get %s: %v %v", size, id, ok, err)
			}
			if !doc.Equal(jobDoc("Running", cpu)) {
				t.Fatalf("size %d: row %s recovered wrong:\n%s", size, id, doc)
			}
		}
		ds2.Close()
	}
}

// TestDurableCompaction: Compact writes the snapshot, drops the sealed
// segments, and a reopen recovers snapshot + post-compaction log suffix
// — including a table first created after the snapshot, whose codec
// rides in the WAL records.
func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{Sync: true, CompactBytes: -1})
	jobs := ds.MustTable("jobs", StructuredCodec{})
	for i := 0; i < 20; i++ {
		if err := jobs.Put(fmt.Sprintf("j%d", i), jobDoc("Running", i)); err != nil {
			t.Fatal(err)
		}
	}
	preCompact := ds.Stats().WALBytes
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	st := ds.Stats()
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d", st.Compactions)
	}
	if st.WALBytes >= preCompact {
		t.Fatalf("compaction did not shrink the log: %d -> %d", preCompact, st.WALBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}
	// Mutations after the snapshot, on an existing and a brand-new table.
	if err := jobs.Put("post", jobDoc("Queued", 99)); err != nil {
		t.Fatal(err)
	}
	if ok, err := jobs.Delete("j0"); err != nil || !ok {
		t.Fatalf("delete j0: %v %v", ok, err)
	}
	late := ds.MustTable("late", BlobCodec{})
	if err := late.Put("l1", jobDoc("New", 1)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2 := openDurable(t, dir, DurableOptions{CompactBytes: -1})
	defer ds2.Close()
	jobs2, ok := ds2.Table("jobs")
	if !ok {
		t.Fatal("jobs missing")
	}
	if jobs2.Len() != 20 { // 20 puts - j0 deleted + post
		t.Fatalf("jobs.Len() = %d, want 20", jobs2.Len())
	}
	if jobs2.Exists("j0") || !jobs2.Exists("post") || !jobs2.Exists("j19") {
		t.Fatal("post-compaction suffix replayed wrong")
	}
	late2, ok := ds2.Table("late")
	if !ok {
		t.Fatal("table created after snapshot not recovered")
	}
	if late2.Codec().Name() != "blob" {
		t.Fatalf("late codec = %q", late2.Codec().Name())
	}
	doc, ok, err := late2.Get("l1")
	if err != nil || !ok || !doc.Equal(jobDoc("New", 1)) {
		t.Fatalf("late/l1: %v %v\n%s", ok, err, doc)
	}
}

// TestDurableAutoCompaction: commits past CompactBytes kick a background
// compaction that produces a snapshot without any explicit call.
func TestDurableAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{CompactBytes: 4096})
	jobs := ds.MustTable("jobs", BlobCodec{})
	for i := 0; i < 200; i++ {
		if err := jobs.Put(fmt.Sprintf("j%d", i%10), jobDoc("Running", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil { // waits for the background pass
		t.Fatal(err)
	}
	if ds.Stats().Compactions == 0 {
		t.Fatal("no automatic compaction after 200 commits past the threshold")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	ds2 := openDurable(t, dir, DurableOptions{CompactBytes: -1})
	defer ds2.Close()
	jobs2, _ := ds2.Table("jobs")
	if jobs2 == nil || jobs2.Len() != 10 {
		t.Fatalf("recovered %v rows, want 10", jobs2)
	}
}

// TestDurableMetrics: commit, replay and compaction all land in the
// shared pipeline metrics under the /wal path.
func TestDurableMetrics(t *testing.T) {
	dir := t.TempDir()
	m := pipeline.NewMetrics()
	ds := openDurable(t, dir, DurableOptions{CompactBytes: -1, Metrics: m})
	jobs := ds.MustTable("jobs", BlobCodec{})
	for i := 0; i < 5; i++ {
		if err := jobs.Put(fmt.Sprintf("j%d", i), jobDoc("Running", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if s := snap[pipeline.Key{Path: "/wal", Action: "commit"}]; s.Calls != 5 {
		t.Fatalf("commit metric calls = %d, want 5", s.Calls)
	}
	if s := snap[pipeline.Key{Path: "/wal", Action: "replay"}]; s.Calls != 1 {
		t.Fatalf("replay metric calls = %d, want 1", s.Calls)
	}
	if s := snap[pipeline.Key{Path: "/wal", Action: "compact"}]; s.Calls != 1 {
		t.Fatalf("compact metric calls = %d, want 1", s.Calls)
	}

	// A second open replays through the same metrics instance.
	m2 := pipeline.NewMetrics()
	ds2 := openDurable(t, dir, DurableOptions{CompactBytes: -1, Metrics: m2})
	defer ds2.Close()
	if s := m2.Snapshot()[pipeline.Key{Path: "/wal", Action: "replay"}]; s.Calls != 1 {
		t.Fatalf("reopen replay metric calls = %d", s.Calls)
	}
}

// TestDurableCorruptSnapshotRefused: a durable store with a corrupted
// snapshot refuses to open rather than recovering partial state.
func TestDurableCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, DurableOptions{CompactBytes: -1})
	jobs := ds.MustTable("jobs", BlobCodec{})
	if err := jobs.Put("j1", jobDoc("Running", 1)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, DurableOptions{CompactBytes: -1}); err == nil {
		t.Fatal("OpenDurable accepted a truncated snapshot")
	}
}
