package resourcedb

import (
	"fmt"
	"sort"
	"sync"

	"uvacg/internal/xmlutil"
)

// Table maps resource IDs to encoded state documents. Rows are stored in
// their codec's wire form; Get pays a decode and Put an encode on every
// access, the same serialization boundary WSRF.NET's database crossing
// imposes on every method invocation.
type Table struct {
	name  string
	codec Codec

	// journal, when set, records every mutation in a write-ahead log
	// before Put/Delete acknowledge it (see DurableStore). The enqueue
	// happens under mu so log order matches in-memory apply order; the
	// durability wait happens after mu is released so concurrent
	// committers share one group commit.
	journal tableJournal

	mu   sync.RWMutex
	rows map[string][]byte
	// index[localName][text] = set of ids; maintained only for
	// indexable codecs.
	index map[string]map[string]map[string]struct{}
}

// tableJournal is the write-ahead hook DurableStore installs on tables.
type tableJournal interface {
	enqueuePut(table, codec, id string, row []byte) (seq uint64, err error)
	enqueueDelete(table, id string) (seq uint64, err error)
	waitDurable(seq uint64) error
}

// NewTable builds a table with the given codec.
func NewTable(name string, codec Codec) *Table {
	t := &Table{name: name, codec: codec, rows: make(map[string][]byte)}
	if codec.Indexable() {
		t.index = make(map[string]map[string]map[string]struct{})
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Codec returns the table's codec.
func (t *Table) Codec() Codec { return t.codec }

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Put stores doc as the state of resource id, replacing any prior state.
func (t *Table) Put(id string, doc *xmlutil.Element) error {
	if id == "" {
		return fmt.Errorf("resourcedb: empty resource id")
	}
	data, err := t.codec.Encode(doc)
	if err != nil {
		return fmt.Errorf("resourcedb: encode %s/%s: %w", t.name, id, err)
	}
	var props map[string][]string
	if t.index != nil {
		props = topLevelProperties(doc)
	}
	t.mu.Lock()
	var seq uint64
	if t.journal != nil {
		seq, err = t.journal.enqueuePut(t.name, t.codec.Name(), id, data)
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("resourcedb: journal %s/%s: %w", t.name, id, err)
		}
	}
	if t.index != nil {
		t.unindexLocked(id)
	}
	t.rows[id] = data
	if t.index != nil {
		t.indexLocked(id, props)
	}
	t.mu.Unlock()
	if t.journal != nil {
		if err := t.journal.waitDurable(seq); err != nil {
			return fmt.Errorf("resourcedb: commit %s/%s: %w", t.name, id, err)
		}
	}
	return nil
}

// putRaw installs already-encoded row bytes, bypassing the journal —
// the replay path. Rows arrive in log order, so index maintenance
// mirrors Put's.
func (t *Table) putRaw(id string, data []byte) error {
	var props map[string][]string
	if t.index != nil {
		doc, err := t.codec.Decode(data)
		if err != nil {
			return fmt.Errorf("resourcedb: replay row %s/%s: %w", t.name, id, err)
		}
		props = topLevelProperties(doc)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.index != nil {
		t.unindexLocked(id)
	}
	t.rows[id] = data
	if t.index != nil {
		t.indexLocked(id, props)
	}
	return nil
}

// Get loads and decodes the state of resource id.
func (t *Table) Get(id string) (*xmlutil.Element, bool, error) {
	t.mu.RLock()
	data, ok := t.rows[id]
	t.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	doc, err := t.codec.Decode(data)
	if err != nil {
		return nil, true, fmt.Errorf("resourcedb: decode %s/%s: %w", t.name, id, err)
	}
	return doc, true, nil
}

// Exists reports row presence without paying a decode.
func (t *Table) Exists(id string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.rows[id]
	return ok
}

// Delete removes a resource's row, reporting whether it existed. On a
// journaled table the removal is acknowledged only once the delete
// record is durable: a journal that refuses the record (sticky log
// failure) leaves the row in place, and a commit that fails to reach
// disk is surfaced as an error rather than a clean true — the row may
// resurrect on restart, and the caller must not treat the delete as
// done.
func (t *Table) Delete(id string) (bool, error) {
	t.mu.Lock()
	if _, ok := t.rows[id]; !ok {
		t.mu.Unlock()
		return false, nil
	}
	var seq uint64
	if t.journal != nil {
		var err error
		seq, err = t.journal.enqueueDelete(t.name, id)
		if err != nil {
			t.mu.Unlock()
			return false, fmt.Errorf("resourcedb: journal %s/%s: %w", t.name, id, err)
		}
	}
	if t.index != nil {
		t.unindexLocked(id)
	}
	delete(t.rows, id)
	t.mu.Unlock()
	if t.journal != nil {
		if err := t.journal.waitDurable(seq); err != nil {
			return false, fmt.Errorf("resourcedb: commit %s/%s: %w", t.name, id, err)
		}
	}
	return true, nil
}

// deleteRaw removes a row without journaling — the replay path.
func (t *Table) deleteRaw(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[id]; !ok {
		return
	}
	if t.index != nil {
		t.unindexLocked(id)
	}
	delete(t.rows, id)
}

// IDs returns all resource ids, sorted.
func (t *Table) IDs() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.rows))
	for id := range t.rows {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// QueryProperty returns the ids of resources whose top-level property
// localName has the exact text value. Indexable codecs answer from the
// index; blob tables fall back to a scan that decodes every row — the
// §5 penalty, measured by benchmark E3.
func (t *Table) QueryProperty(localName, value string) ([]string, error) {
	if t.index != nil {
		t.mu.RLock()
		defer t.mu.RUnlock()
		var out []string
		for id := range t.index[localName][value] {
			out = append(out, id)
		}
		sort.Strings(out)
		return out, nil
	}
	return t.Scan(func(id string, doc *xmlutil.Element) bool {
		for _, v := range topLevelProperties(doc)[localName] {
			if v == value {
				return true
			}
		}
		return false
	})
}

// Scan decodes every row and returns the ids accepted by pred, sorted.
func (t *Table) Scan(pred func(id string, doc *xmlutil.Element) bool) ([]string, error) {
	t.mu.RLock()
	snapshot := make(map[string][]byte, len(t.rows))
	for id, data := range t.rows {
		snapshot[id] = data
	}
	t.mu.RUnlock()
	var out []string
	for id, data := range snapshot {
		doc, err := t.codec.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("resourcedb: scan decode %s/%s: %w", t.name, id, err)
		}
		if pred(id, doc) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (t *Table) indexLocked(id string, props map[string][]string) {
	for name, values := range props {
		byValue := t.index[name]
		if byValue == nil {
			byValue = make(map[string]map[string]struct{})
			t.index[name] = byValue
		}
		for _, v := range values {
			ids := byValue[v]
			if ids == nil {
				ids = make(map[string]struct{})
				byValue[v] = ids
			}
			ids[id] = struct{}{}
		}
	}
}

func (t *Table) unindexLocked(id string) {
	data, ok := t.rows[id]
	if !ok {
		return
	}
	doc, err := t.codec.Decode(data)
	if err != nil {
		return
	}
	for name, values := range topLevelProperties(doc) {
		byValue := t.index[name]
		for _, v := range values {
			if ids := byValue[v]; ids != nil {
				delete(ids, id)
				if len(ids) == 0 {
					delete(byValue, v)
				}
			}
		}
		if len(byValue) == 0 {
			delete(t.index, name)
		}
	}
}
