package resourcedb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"uvacg/internal/pipeline"
	"uvacg/internal/wal"
)

// DurableStore is a Store whose every table mutation is write-ahead
// logged before it is acknowledged: the crash-safe replacement for the
// explicit whole-store snapshots WSRF.NET leans on its ODBC database
// for. Open replays snapshot + log to the last committed write;
// compaction folds the log back into the UVDB1 snapshot format and
// truncates old segments.
//
// Layout under the data directory:
//
//	snapshot.db          last compacted UVDB1 snapshot (may be absent)
//	wal-<index>.log      CRC-framed segments, replayed in index order
type DurableStore struct {
	*Store
	dir  string
	opts DurableOptions
	log  *wal.Log

	// compactMu serializes compactions; compacting gates the background
	// trigger so at most one runs at a time.
	compactMu  sync.Mutex
	compacting atomic.Bool
	wg         sync.WaitGroup

	replayed       uint64
	tornTail       bool
	compactions    atomic.Uint64
	bytesAtCompact atomic.Uint64 // log bytes when the last compaction ran
	compactErr     atomic.Value  // last background compaction error (string)
}

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// Sync fsyncs every group commit (the durable default). Off, a
	// process crash still loses nothing but a machine crash can lose
	// OS-buffered commits.
	Sync bool
	// SegmentBytes is the WAL segment rotation threshold (default 4 MiB).
	SegmentBytes int64
	// FlushWindow is the WAL's adaptive group-commit linger: a flush
	// leader about to sync a lone record right after a multi-record
	// batch waits this long for concurrent committers to pile in. 0
	// disables the wait; serial workloads never pay it either way.
	FlushWindow time.Duration
	// CompactBytes triggers a background compaction once live WAL bytes
	// exceed it. 0 means the 8 MiB default; negative disables automatic
	// compaction (Compact can still be called explicitly).
	CompactBytes int64
	// Metrics, when set, records commit/replay/compaction timings under
	// the "/wal" path alongside the per-action call metrics.
	Metrics *pipeline.Metrics
}

const snapshotFile = "snapshot.db"

// OpenDurable opens (or creates) the durable store rooted at dir,
// recovering its state from the last snapshot plus the committed WAL
// suffix. Tables created afterwards via CreateTable/MustTable are
// journaled automatically.
func OpenDurable(dir string, opts DurableOptions) (*DurableStore, error) {
	if opts.CompactBytes == 0 {
		opts.CompactBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ds := &DurableStore{Store: NewStore(), dir: dir, opts: opts}
	ds.Store.journal = ds

	start := time.Now()
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		if err := ds.Store.LoadFile(snapPath); err != nil {
			return nil, fmt.Errorf("resourcedb: load snapshot: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	stats, err := wal.Replay(dir, ds.applyRecord)
	if err != nil {
		return nil, fmt.Errorf("resourcedb: wal replay: %w", err)
	}
	ds.replayed, ds.tornTail = stats.Records, stats.TornTail
	if opts.Metrics != nil {
		opts.Metrics.Record(pipeline.Key{Path: "/wal", Action: "replay"}, time.Since(start), false)
	}

	log, err := wal.Open(dir, wal.Options{Sync: opts.Sync, SegmentBytes: opts.SegmentBytes, FlushWindow: opts.FlushWindow})
	if err != nil {
		return nil, err
	}
	ds.log = log
	// The growth trigger in maybeCompact counts only bytes written by
	// this process; segments inherited from the last run would otherwise
	// be invisible to it, leaving restart-heavy workloads paying full
	// replay cost forever. Pay the replay debt down now.
	if opts.CompactBytes >= 0 && log.SizeBytes() >= opts.CompactBytes {
		ds.kickCompaction()
	}
	return ds, nil
}

// applyRecord replays one journaled mutation onto the in-memory tables.
// Replayed puts overwrite and replayed deletes tolerate missing rows,
// so a log suffix overlapping the snapshot (the compaction boundary)
// re-applies harmlessly.
func (ds *DurableStore) applyRecord(rec wal.Record) error {
	switch rec.Op {
	case wal.OpPut:
		codec, err := codecByName(rec.Codec)
		if err != nil {
			return err
		}
		return ds.Store.MustTable(rec.Table, codec).putRaw(rec.ID, rec.Row)
	case wal.OpDelete:
		if t, ok := ds.Store.Table(rec.Table); ok {
			t.deleteRaw(rec.ID)
		}
		return nil
	}
	return fmt.Errorf("resourcedb: unknown wal op %d", rec.Op)
}

// enqueuePut implements tableJournal.
func (ds *DurableStore) enqueuePut(table, codec, id string, row []byte) (uint64, error) {
	return ds.log.Enqueue(wal.Record{Op: wal.OpPut, Table: table, Codec: codec, ID: id, Row: row})
}

// enqueueDelete implements tableJournal.
func (ds *DurableStore) enqueueDelete(table, id string) (uint64, error) {
	return ds.log.Enqueue(wal.Record{Op: wal.OpDelete, Table: table, ID: id})
}

// waitDurable implements tableJournal: the group-commit wait, plus the
// compaction trigger and commit metrics.
func (ds *DurableStore) waitDurable(seq uint64) error {
	start := time.Now()
	err := ds.log.WaitDurable(seq)
	if ds.opts.Metrics != nil {
		ds.opts.Metrics.Record(pipeline.Key{Path: "/wal", Action: "commit"}, time.Since(start), err != nil)
	}
	if err == nil {
		ds.maybeCompact()
	}
	return err
}

// maybeCompact kicks one background compaction when the log has grown
// past the threshold since the last one. The check is two atomic loads,
// cheap enough for the per-commit path.
func (ds *DurableStore) maybeCompact() {
	if ds.opts.CompactBytes < 0 {
		return
	}
	grown := ds.log.Stats().Bytes - ds.bytesAtCompact.Load()
	if int64(grown) < ds.opts.CompactBytes {
		return
	}
	ds.kickCompaction()
}

// kickCompaction starts one background compaction unless one is already
// running.
func (ds *DurableStore) kickCompaction() {
	if !ds.compacting.CompareAndSwap(false, true) {
		return
	}
	ds.wg.Add(1)
	go func() {
		defer ds.wg.Done()
		defer ds.compacting.Store(false)
		if err := ds.Compact(); err != nil {
			ds.compactErr.Store(err.Error())
		}
	}()
}

// Compact folds the committed log into a fresh snapshot and deletes the
// segments it covers: rotate the WAL (sealing everything enqueued so
// far below the returned boundary), snapshot the tables, then drop the
// sealed segments. Records landing in the fresh segment during the
// snapshot may appear in both — replay is idempotent, so the overlap is
// harmless. Safe to call concurrently with commits.
func (ds *DurableStore) Compact() error {
	ds.compactMu.Lock()
	defer ds.compactMu.Unlock()
	start := time.Now()
	bound, err := ds.log.Rotate()
	if err == nil {
		if err = ds.Store.SaveFile(filepath.Join(ds.dir, snapshotFile)); err == nil {
			err = ds.log.RemoveSegmentsBelow(bound)
		}
	}
	if ds.opts.Metrics != nil {
		ds.opts.Metrics.Record(pipeline.Key{Path: "/wal", Action: "compact"}, time.Since(start), err != nil)
	}
	if err != nil {
		return fmt.Errorf("resourcedb: compact: %w", err)
	}
	ds.bytesAtCompact.Store(ds.log.Stats().Bytes)
	ds.compactions.Add(1)
	return nil
}

// Close waits for any background compaction and closes the WAL. The
// in-memory tables stay readable; further mutations fail.
func (ds *DurableStore) Close() error {
	ds.wg.Wait()
	return ds.log.Close()
}

// Dir returns the data directory.
func (ds *DurableStore) Dir() string { return ds.dir }

// DurabilityStats snapshots the durability counters: the WAL's commit
// machinery plus this store's recovery and compaction history.
type DurabilityStats struct {
	WAL             wal.Stats
	ReplayedRecords uint64 // records replayed by OpenDurable
	TornTail        bool   // last recovery ended at a torn frame
	Compactions     uint64
	WALBytes        int64 // live segment bytes (replay debt)
}

// Stats returns current durability counters.
func (ds *DurableStore) Stats() DurabilityStats {
	return DurabilityStats{
		WAL:             ds.log.Stats(),
		ReplayedRecords: ds.replayed,
		TornTail:        ds.tornTail,
		Compactions:     ds.compactions.Load(),
		WALBytes:        ds.log.SizeBytes(),
	}
}
