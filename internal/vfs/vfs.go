// Package vfs is the sandboxed per-machine file system that the File
// System Service controls — "the portion of the file system usable by
// the Campus Grid on the machine on which the FSS resides" (paper §4.1).
// It is an in-memory tree of directories holding named files, giving the
// testbed deterministic, portable storage with the same operations the
// FSS exposes: Read, Write, List, plus the local fast-path Move the FSS
// uses when a wanted file is already on the same machine.
package vfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FileInfo describes one file in a directory listing.
type FileInfo struct {
	Name string
	Size int64
}

// FS is one machine's grid-visible file system.
type FS struct {
	mu   sync.RWMutex
	dirs map[string]map[string][]byte
	seq  int
}

// New creates a file system containing only the root directory "/".
func New() *FS {
	return &FS{dirs: map[string]map[string][]byte{"/": {}}}
}

// CleanPath canonicalizes a directory path: leading '/', no trailing
// '/', no empty segments.
func CleanPath(path string) (string, error) {
	if path == "" {
		return "", fmt.Errorf("vfs: empty path")
	}
	segs := strings.Split(strings.Trim(path, "/"), "/")
	if len(segs) == 1 && segs[0] == "" {
		return "/", nil
	}
	for _, s := range segs {
		if s == "" || s == "." || s == ".." {
			return "", fmt.Errorf("vfs: invalid path %q", path)
		}
	}
	return "/" + strings.Join(segs, "/"), nil
}

// Mkdir creates a directory (parents included). Existing directories
// are left untouched.
func (fs *FS) Mkdir(path string) (string, error) {
	clean, err := CleanPath(path)
	if err != nil {
		return "", err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.mkdirLocked(clean)
	return clean, nil
}

func (fs *FS) mkdirLocked(clean string) {
	if _, ok := fs.dirs[clean]; ok {
		return
	}
	// Create parents.
	segs := strings.Split(strings.TrimPrefix(clean, "/"), "/")
	cur := ""
	for _, s := range segs {
		cur = cur + "/" + s
		if _, ok := fs.dirs[cur]; !ok {
			fs.dirs[cur] = make(map[string][]byte)
		}
	}
}

// MkdirUnique creates a fresh directory under parent with the given
// prefix and returns its path — how the FSS provisions a working
// directory per job.
func (fs *FS) MkdirUnique(parent, prefix string) (string, error) {
	clean, err := CleanPath(parent)
	if err != nil {
		return "", err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.mkdirLocked(clean)
	for {
		fs.seq++
		candidate := fmt.Sprintf("%s/%s-%06d", strings.TrimSuffix(clean, "/"), prefix, fs.seq)
		if candidate[0] != '/' {
			candidate = "/" + candidate
		}
		if _, exists := fs.dirs[candidate]; !exists {
			fs.dirs[candidate] = make(map[string][]byte)
			return candidate, nil
		}
	}
}

// DirExists reports whether a directory exists.
func (fs *FS) DirExists(path string) bool {
	clean, err := CleanPath(path)
	if err != nil {
		return false
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.dirs[clean]
	return ok
}

func validateName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("vfs: invalid file name %q", name)
	}
	return nil
}

// Write stores a file in a directory, replacing any existing content.
func (fs *FS) Write(dir, name string, data []byte) error {
	clean, err := CleanPath(dir)
	if err != nil {
		return err
	}
	if err := validateName(name); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.dirs[clean]
	if !ok {
		return fmt.Errorf("vfs: no such directory %q", clean)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d[name] = cp
	return nil
}

// Read returns a copy of a file's content.
func (fs *FS) Read(dir, name string) ([]byte, error) {
	clean, err := CleanPath(dir)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, ok := fs.dirs[clean]
	if !ok {
		return nil, fmt.Errorf("vfs: no such directory %q", clean)
	}
	data, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("vfs: no such file %q in %q", name, clean)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports whether a file exists.
func (fs *FS) Exists(dir, name string) bool {
	clean, err := CleanPath(dir)
	if err != nil {
		return false
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, ok := fs.dirs[clean]
	if !ok {
		return false
	}
	_, ok = d[name]
	return ok
}

// List returns the directory's files sorted by name.
func (fs *FS) List(dir string) ([]FileInfo, error) {
	clean, err := CleanPath(dir)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, ok := fs.dirs[clean]
	if !ok {
		return nil, fmt.Errorf("vfs: no such directory %q", clean)
	}
	out := make([]FileInfo, 0, len(d))
	for name, data := range d {
		out = append(out, FileInfo{Name: name, Size: int64(len(data))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Move relocates a file between directories on the same machine without
// copying through the network — the FSS fast path for files already
// local ("the FSS simply moves the file within the portion of the file
// system it controls", paper §4.6).
func (fs *FS) Move(srcDir, srcName, dstDir, dstName string) error {
	src, err := CleanPath(srcDir)
	if err != nil {
		return err
	}
	dst, err := CleanPath(dstDir)
	if err != nil {
		return err
	}
	if err := validateName(srcName); err != nil {
		return err
	}
	if err := validateName(dstName); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sd, ok := fs.dirs[src]
	if !ok {
		return fmt.Errorf("vfs: no such directory %q", src)
	}
	dd, ok := fs.dirs[dst]
	if !ok {
		return fmt.Errorf("vfs: no such directory %q", dst)
	}
	data, ok := sd[srcName]
	if !ok {
		return fmt.Errorf("vfs: no such file %q in %q", srcName, src)
	}
	dd[dstName] = data
	if !(src == dst && srcName == dstName) {
		delete(sd, srcName)
	}
	return nil
}

// RemoveDir deletes a directory and its files. The root cannot be
// removed. Subdirectories are removed too.
func (fs *FS) RemoveDir(path string) error {
	clean, err := CleanPath(path)
	if err != nil {
		return err
	}
	if clean == "/" {
		return fmt.Errorf("vfs: cannot remove root")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.dirs[clean]; !ok {
		return fmt.Errorf("vfs: no such directory %q", clean)
	}
	prefix := clean + "/"
	for d := range fs.dirs {
		if d == clean || strings.HasPrefix(d, prefix) {
			delete(fs.dirs, d)
		}
	}
	return nil
}

// Usage reports total file count and byte count across the file system.
func (fs *FS) Usage() (files int, bytes int64) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for _, d := range fs.dirs {
		for _, data := range d {
			files++
			bytes += int64(len(data))
		}
	}
	return files, bytes
}

// Dirs lists all directory paths, sorted.
func (fs *FS) Dirs() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.dirs))
	for d := range fs.dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
