package vfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestCleanPath(t *testing.T) {
	good := map[string]string{
		"/":     "/",
		"/a":    "/a",
		"a":     "/a",
		"/a/b/": "/a/b",
		"a/b/c": "/a/b/c",
	}
	for in, want := range good {
		got, err := CleanPath(in)
		if err != nil || got != want {
			t.Errorf("CleanPath(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "/a//b", "/a/./b", "/a/../b"} {
		if _, err := CleanPath(bad); err == nil {
			t.Errorf("CleanPath(%q): expected error", bad)
		}
	}
}

func TestMkdirCreatesParents(t *testing.T) {
	fs := New()
	path, err := fs.Mkdir("/grid/jobs/j1")
	if err != nil {
		t.Fatal(err)
	}
	if path != "/grid/jobs/j1" {
		t.Fatalf("path = %q", path)
	}
	for _, d := range []string{"/grid", "/grid/jobs", "/grid/jobs/j1"} {
		if !fs.DirExists(d) {
			t.Errorf("missing parent %q", d)
		}
	}
	// Idempotent.
	if _, err := fs.Mkdir("/grid/jobs/j1"); err != nil {
		t.Fatal(err)
	}
}

func TestMkdirUnique(t *testing.T) {
	fs := New()
	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		d, err := fs.MkdirUnique("/grid", "job")
		if err != nil {
			t.Fatal(err)
		}
		if seen[d] {
			t.Fatalf("duplicate unique dir %q", d)
		}
		seen[d] = true
		if !fs.DirExists(d) {
			t.Fatalf("unique dir %q not created", d)
		}
	}
}

func TestWriteReadList(t *testing.T) {
	fs := New()
	if _, err := fs.Mkdir("/work"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/work", "in.dat", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/work", "app.exe", []byte{0x4d, 0x5a}); err != nil {
		t.Fatal(err)
	}
	data, err := fs.Read("/work", "in.dat")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read: %q %v", data, err)
	}
	list, err := fs.List("/work")
	if err != nil {
		t.Fatal(err)
	}
	want := []FileInfo{{Name: "app.exe", Size: 2}, {Name: "in.dat", Size: 5}}
	if !reflect.DeepEqual(list, want) {
		t.Fatalf("list = %v", list)
	}
	if !fs.Exists("/work", "in.dat") || fs.Exists("/work", "nope") {
		t.Error("Exists misreports")
	}
}

func TestReadIsACopy(t *testing.T) {
	fs := New()
	fs.Mkdir("/d")
	if err := fs.Write("/d", "f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.Read("/d", "f")
	data[0] = 'X'
	again, _ := fs.Read("/d", "f")
	if string(again) != "abc" {
		t.Fatal("mutation through Read leaked into the store")
	}
}

func TestWriteIsACopy(t *testing.T) {
	fs := New()
	fs.Mkdir("/d")
	buf := []byte("abc")
	if err := fs.Write("/d", "f", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _ := fs.Read("/d", "f")
	if string(got) != "abc" {
		t.Fatal("caller mutation leaked into the store")
	}
}

func TestErrorsOnMissing(t *testing.T) {
	fs := New()
	if err := fs.Write("/ghost", "f", nil); err == nil {
		t.Error("write to missing dir accepted")
	}
	if _, err := fs.Read("/", "ghost"); err == nil {
		t.Error("read of missing file accepted")
	}
	if _, err := fs.List("/ghost"); err == nil {
		t.Error("list of missing dir accepted")
	}
	if err := fs.Write("/", "bad/name", nil); err == nil {
		t.Error("slash in file name accepted")
	}
	if err := fs.Write("/", "", nil); err == nil {
		t.Error("empty file name accepted")
	}
}

func TestMove(t *testing.T) {
	fs := New()
	fs.Mkdir("/a")
	fs.Mkdir("/b")
	if err := fs.Write("/a", "f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Move("/a", "f", "/b", "g"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a", "f") {
		t.Error("source survived move")
	}
	got, err := fs.Read("/b", "g")
	if err != nil || string(got) != "data" {
		t.Fatalf("dest: %q %v", got, err)
	}
	// Self-move is a no-op, not a delete.
	if err := fs.Move("/b", "g", "/b", "g"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/b", "g") {
		t.Fatal("self-move deleted the file")
	}
	if err := fs.Move("/b", "ghost", "/a", "x"); err == nil {
		t.Error("move of missing file accepted")
	}
}

func TestRemoveDirRecursive(t *testing.T) {
	fs := New()
	fs.Mkdir("/jobs/j1/sub")
	fs.Write("/jobs/j1", "f", []byte("x"))
	if err := fs.RemoveDir("/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if fs.DirExists("/jobs/j1") || fs.DirExists("/jobs/j1/sub") {
		t.Error("directory tree survived removal")
	}
	if !fs.DirExists("/jobs") {
		t.Error("parent removed")
	}
	if err := fs.RemoveDir("/"); err == nil {
		t.Error("root removal accepted")
	}
	if err := fs.RemoveDir("/ghost"); err == nil {
		t.Error("missing dir removal accepted")
	}
}

func TestUsage(t *testing.T) {
	fs := New()
	fs.Mkdir("/a")
	fs.Write("/a", "f1", make([]byte, 100))
	fs.Write("/a", "f2", make([]byte, 50))
	files, byteCount := fs.Usage()
	if files != 2 || byteCount != 150 {
		t.Fatalf("usage = %d files %d bytes", files, byteCount)
	}
}

func TestDirs(t *testing.T) {
	fs := New()
	fs.Mkdir("/b")
	fs.Mkdir("/a")
	got := fs.Dirs()
	if !reflect.DeepEqual(got, []string{"/", "/a", "/b"}) {
		t.Fatalf("Dirs = %v", got)
	}
}

// TestWriteReadRoundTripProperty: what is written is read back intact,
// for arbitrary content.
func TestWriteReadRoundTripProperty(t *testing.T) {
	fs := New()
	fs.Mkdir("/p")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, r.Intn(4096))
		r.Read(data)
		name := fmt.Sprintf("f-%d", seed)
		if err := fs.Write("/p", name, data); err != nil {
			return false
		}
		got, err := fs.Read("/p", name)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentUse(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dir := fmt.Sprintf("/g%d", g)
			if _, err := fs.Mkdir(dir); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("f%d", i)
				if err := fs.Write(dir, name, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := fs.Read(dir, name); err != nil {
					t.Error(err)
					return
				}
				fs.Usage()
			}
		}(g)
	}
	wg.Wait()
	files, _ := fs.Usage()
	if files != 400 {
		t.Fatalf("files = %d", files)
	}
}
