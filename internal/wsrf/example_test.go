package wsrf_test

import (
	"context"
	"fmt"

	"uvacg/internal/resourcedb"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/wsrf"
	"uvacg/internal/xmlutil"
)

// Example_programmingModel is the Go rendering of paper Fig. 2: a
// service declares state (the [Resource] member), a derived property
// (the [ResourceProperty] getter) and imports WSRF port types
// ([WSRFPortType]); any client then reads it through the standard
// GetResourceProperty plumbing.
func Example_programmingModel() {
	const ns = "urn:example:myserv"
	someData := xmlutil.Q(ns, "SomeData")
	myData := xmlutil.Q(ns, "MyData")

	store := resourcedb.NewStore()
	svc := wsrf.MustService(wsrf.ServiceConfig{
		Path:    "/MyServ",
		Address: "inproc://host",
		Home:    wsrf.NewStateHome(store.MustTable("myserv", resourcedb.StructuredCodec{})),
	})
	// [WSRFPortType(typeof(GetResourcePropertyPortType))]
	svc.Enable(wsrf.ResourcePropertiesPortType{})
	// [ResourceProperty] public string MyData { get { ... } }
	svc.RegisterProperty(myData, func(ctx context.Context, inv *wsrf.Invocation) ([]*xmlutil.Element, error) {
		return []*xmlutil.Element{
			xmlutil.NewElement(myData, "the string is "+inv.Property(someData)),
		}, nil
	})

	// [Resource] public string some_data;  — initial state per resource.
	epr, err := svc.CreateResource("r1", xmlutil.NewContainer(xmlutil.Q(ns, "State"),
		xmlutil.NewElement(someData, "hello"),
	))
	if err != nil {
		fmt.Println(err)
		return
	}

	mux := soap.NewMux()
	mux.Handle(svc.Path(), svc.Dispatcher())
	network := transport.NewNetwork()
	network.Register("host", transport.NewServer(mux))
	client := transport.NewClient().WithNetwork(network)

	// Any WSRF client reads the derived property with zero
	// service-specific code.
	rc := wsrf.NewResourceClient(client, epr)
	value, err := rc.GetPropertyText(context.Background(), myData)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(value)
	// Output: the string is hello
}
