package wsrf

import (
	"context"
	"fmt"

	"uvacg/internal/soap"
	"uvacg/internal/wsa"
	"uvacg/internal/xmlutil"
)

// WS-ServiceGroup element names.
var (
	qEntry       = xmlutil.Q(NSServiceGroup, "Entry")
	qMemberEPR   = xmlutil.Q(NSServiceGroup, "MemberServiceEPR")
	qContent     = xmlutil.Q(NSServiceGroup, "Content")
	qAdd         = xmlutil.Q(NSServiceGroup, "Add")
	qAddResponse = xmlutil.Q(NSServiceGroup, "AddResponse")
	qEntryKey    = xmlutil.Q("", "key")
)

// Entry is one member of a service group: a member EPR plus arbitrary
// content describing it (for the Node Info Service, the processor's
// hardware description and current utilization).
type Entry struct {
	Key     string
	Member  wsa.EndpointReference
	Content *xmlutil.Element
}

// ServiceGroupPortType implements WS-ServiceGroup over a group resource
// whose state document holds the Entry elements. The Node Info Service
// is a service group "whose members represent the processors available
// for scheduling" (paper §4.4).
type ServiceGroupPortType struct{}

// Name implements PortType.
func (ServiceGroupPortType) Name() string { return "WS-ServiceGroup" }

// Attach implements PortType.
func (ServiceGroupPortType) Attach(s *Service) {
	s.RegisterMethod(ActionAdd, s.handleAdd)
}

func (s *Service) handleAdd(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
	if body == nil {
		return nil, soap.SenderFault("Add requires a request body")
	}
	memberEl := body.Child(qMemberEPR)
	if memberEl == nil {
		return nil, soap.SenderFault("Add requires a MemberServiceEPR")
	}
	member, err := wsa.ParseEPR(memberEl)
	if err != nil {
		return nil, soap.SenderFault("bad member EPR: %v", err)
	}
	var content *xmlutil.Element
	if c := body.Child(qContent); c != nil && len(c.Children) > 0 {
		content = c.Children[0].Clone()
	}
	key := AddEntry(inv.Doc, member, content)
	return xmlutil.NewContainer(qAddResponse, xmlutil.NewElement(xmlutil.Q(NSServiceGroup, "EntryKey"), key)), nil
}

// AddRequest builds the client request body for Add.
func AddRequest(member wsa.EndpointReference, content *xmlutil.Element) *xmlutil.Element {
	req := xmlutil.NewContainer(qAdd, member.ElementNamed(qMemberEPR))
	if content != nil {
		req.Append(xmlutil.NewContainer(qContent, content))
	}
	return req
}

// NewServiceGroupDocument builds the initial state document of a group
// resource.
func NewServiceGroupDocument() *xmlutil.Element {
	return xmlutil.NewContainer(xmlutil.Q(NSServiceGroup, "ServiceGroupRP"))
}

// AddEntry appends a member entry to a group document, returning its
// key. If an entry for the same member EPR exists, its content is
// replaced instead (re-registration is idempotent, which lets machines
// rejoin the grid after restart).
func AddEntry(groupDoc *xmlutil.Element, member wsa.EndpointReference, content *xmlutil.Element) string {
	memberKey := member.String()
	for _, e := range groupDoc.ChildrenNamed(qEntry) {
		existing, err := entryFromElement(e)
		if err == nil && existing.Member.String() == memberKey {
			// Replace content in place.
			e.Children = e.Children[:0]
			e.Append(member.ElementNamed(qMemberEPR))
			if content != nil {
				e.Append(xmlutil.NewContainer(qContent, content.Clone()))
			}
			return existing.Key
		}
	}
	key := fmt.Sprintf("entry-%d", len(groupDoc.ChildrenNamed(qEntry))+1)
	// Guard against key collisions after removals.
	for keyInUse(groupDoc, key) {
		key += "x"
	}
	entry := xmlutil.NewContainer(qEntry, member.ElementNamed(qMemberEPR))
	entry.SetAttr(qEntryKey, key)
	if content != nil {
		entry.Append(xmlutil.NewContainer(qContent, content.Clone()))
	}
	groupDoc.Append(entry)
	return key
}

func keyInUse(groupDoc *xmlutil.Element, key string) bool {
	for _, e := range groupDoc.ChildrenNamed(qEntry) {
		if e.Attr(qEntryKey) == key {
			return true
		}
	}
	return false
}

// RemoveEntry deletes the entry with the given key, reporting success.
func RemoveEntry(groupDoc *xmlutil.Element, key string) bool {
	kept := groupDoc.Children[:0]
	removed := false
	for _, c := range groupDoc.Children {
		if c.Name == qEntry && c.Attr(qEntryKey) == key {
			removed = true
			continue
		}
		kept = append(kept, c)
	}
	groupDoc.Children = kept
	return removed
}

// Entries decodes every entry in a group document.
func Entries(groupDoc *xmlutil.Element) ([]Entry, error) {
	var out []Entry
	for _, e := range groupDoc.ChildrenNamed(qEntry) {
		entry, err := entryFromElement(e)
		if err != nil {
			return nil, err
		}
		out = append(out, entry)
	}
	return out, nil
}

// UpdateEntryContent replaces the content of the entry with the given
// key, reporting success.
func UpdateEntryContent(groupDoc *xmlutil.Element, key string, content *xmlutil.Element) bool {
	for _, e := range groupDoc.ChildrenNamed(qEntry) {
		if e.Attr(qEntryKey) != key {
			continue
		}
		kept := e.Children[:0]
		for _, c := range e.Children {
			if c.Name != qContent {
				kept = append(kept, c)
			}
		}
		e.Children = kept
		if content != nil {
			e.Append(xmlutil.NewContainer(qContent, content.Clone()))
		}
		return true
	}
	return false
}

func entryFromElement(e *xmlutil.Element) (Entry, error) {
	memberEl := e.Child(qMemberEPR)
	if memberEl == nil {
		return Entry{}, fmt.Errorf("wsrf: group entry has no member EPR")
	}
	member, err := wsa.ParseEPR(memberEl)
	if err != nil {
		return Entry{}, err
	}
	entry := Entry{Key: e.Attr(qEntryKey), Member: member}
	if c := e.Child(qContent); c != nil && len(c.Children) > 0 {
		entry.Content = c.Children[0]
	}
	return entry, nil
}
