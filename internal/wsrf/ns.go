// Package wsrf is the WS-Resource Framework runtime — the Go counterpart
// of the WSRF.NET toolkit the paper evaluates. It provides:
//
//   - the wrapper pipeline of paper Fig. 1: each invocation's
//     EndpointReference is resolved to a stateful resource, the resource's
//     state document is loaded from the database, the method runs against
//     it, and changed state is saved back;
//   - the WSRF port types: WS-ResourceProperties (Get/GetMultiple/
//     Query/Set), WS-ResourceLifetime (Destroy/SetTerminationTime plus a
//     termination-time reaper), WS-ServiceGroup, and WS-BaseFaults;
//   - the "WS-Resource as state" abstraction via database-backed
//     ResourceHomes, and hooks for "WS-Resource as process" resources
//     whose properties are computed from live handles (paper §3).
//
// Service authors compose port types and register their own methods and
// computed resource properties — the declarative equivalent of the
// [WSRFPortType], [Resource] and [ResourceProperty] attributes of
// paper Fig. 2.
package wsrf

import "uvacg/internal/xmlutil"

// Specification namespaces (2004 draft era, matching WSRF.NET 1.1).
const (
	// NSResourceProperties is the WS-ResourceProperties namespace.
	NSResourceProperties = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties-1.2-draft-01.xsd"
	// NSResourceLifetime is the WS-ResourceLifetime namespace.
	NSResourceLifetime = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceLifetime-1.2-draft-01.xsd"
	// NSBaseFaults is the WS-BaseFaults namespace.
	NSBaseFaults = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-BaseFaults-1.2-draft-01.xsd"
	// NSServiceGroup is the WS-ServiceGroup namespace.
	NSServiceGroup = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ServiceGroup-1.2-draft-01.xsd"
	// NSImpl is this implementation's namespace, used for the resource
	// identifier reference property and factory messages.
	NSImpl = "urn:uvacg:wsrf"
)

// Action URIs for the WSRF-defined port types.
const (
	ActionGetResourceProperty           = NSResourceProperties + "/GetResourceProperty"
	ActionGetResourcePropertyDocument   = NSResourceProperties + "/GetResourcePropertyDocument"
	ActionGetMultipleResourceProperties = NSResourceProperties + "/GetMultipleResourceProperties"
	ActionQueryResourceProperties       = NSResourceProperties + "/QueryResourceProperties"
	ActionSetResourceProperties         = NSResourceProperties + "/SetResourceProperties"
	ActionDestroy                       = NSResourceLifetime + "/Destroy"
	ActionSetTerminationTime            = NSResourceLifetime + "/SetTerminationTime"
	ActionAdd                           = NSServiceGroup + "/Add"
)

// XPathDialect identifies this implementation's XPath-lite query dialect.
const XPathDialect = "urn:uvacg:wsrf:xpath-lite"

// QResourceID is the reference property naming a resource in an EPR —
// the "unique name given in the <ReferenceProperties> element" the paper
// describes WSRF.NET keying its database on.
var QResourceID = xmlutil.Q(NSImpl, "ResourceID")

// Shared message QNames.
var (
	qGetResourceProperty  = xmlutil.Q(NSResourceProperties, "GetResourceProperty")
	qGetRPDocument        = xmlutil.Q(NSResourceProperties, "GetResourcePropertyDocument")
	qGetRPDocumentResp    = xmlutil.Q(NSResourceProperties, "GetResourcePropertyDocumentResponse")
	qGetRPResponse        = xmlutil.Q(NSResourceProperties, "GetResourcePropertyResponse")
	qGetMultiple          = xmlutil.Q(NSResourceProperties, "GetMultipleResourceProperties")
	qGetMultipleResponse  = xmlutil.Q(NSResourceProperties, "GetMultipleResourcePropertiesResponse")
	qResourceProperty     = xmlutil.Q(NSResourceProperties, "ResourceProperty")
	qQueryRP              = xmlutil.Q(NSResourceProperties, "QueryResourceProperties")
	qQueryRPResponse      = xmlutil.Q(NSResourceProperties, "QueryResourcePropertiesResponse")
	qQueryExpression      = xmlutil.Q(NSResourceProperties, "QueryExpression")
	qSetRP                = xmlutil.Q(NSResourceProperties, "SetResourceProperties")
	qSetRPResponse        = xmlutil.Q(NSResourceProperties, "SetResourcePropertiesResponse")
	qInsert               = xmlutil.Q(NSResourceProperties, "Insert")
	qUpdate               = xmlutil.Q(NSResourceProperties, "Update")
	qDelete               = xmlutil.Q(NSResourceProperties, "Delete")
	qResourcePropertyName = xmlutil.Q("", "resourceProperty")
	qDialect              = xmlutil.Q("", "Dialect")

	qDestroy             = xmlutil.Q(NSResourceLifetime, "Destroy")
	qDestroyResponse     = xmlutil.Q(NSResourceLifetime, "DestroyResponse")
	qSetTermTime         = xmlutil.Q(NSResourceLifetime, "SetTerminationTime")
	qSetTermTimeResponse = xmlutil.Q(NSResourceLifetime, "SetTerminationTimeResponse")
	qRequestedTermTime   = xmlutil.Q(NSResourceLifetime, "RequestedTerminationTime")
	qNewTermTime         = xmlutil.Q(NSResourceLifetime, "NewTerminationTime")
	qCurrentTime         = xmlutil.Q(NSResourceLifetime, "CurrentTime")

	// QTerminationTime is the resource property recording scheduled
	// destruction, stored in the state document.
	QTerminationTime = xmlutil.Q(NSResourceLifetime, "TerminationTime")
)
