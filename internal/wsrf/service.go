package wsrf

import (
	"context"
	"fmt"

	"uvacg/internal/soap"
	"uvacg/internal/wsa"
	"uvacg/internal/xmlutil"
)

// MethodFunc is a service-author method: it receives the invocation
// (resource state loaded) and the request body, and returns the response
// body (nil for void). Errors become SOAP faults; return a BaseFault for
// typed WSRF faults.
type MethodFunc func(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error)

// PropertyProvider computes a resource property on demand — the analog
// of a C# property getter annotated [ResourceProperty] (paper Fig. 2).
// Providers may return multiple elements (multi-valued properties).
type PropertyProvider func(ctx context.Context, inv *Invocation) ([]*xmlutil.Element, error)

// PortType bundles WSRF-defined operations a service imports, the
// [WSRFPortType] attribute's role.
type PortType interface {
	// Attach registers the port type's actions on the service.
	Attach(s *Service)
	// Name identifies the port type for diagnostics.
	Name() string
}

// Service is the WSRF.NET ServiceSkeleton equivalent: a dispatcher wired
// with the wrapper pipeline, a resource home, and composed port types.
type Service struct {
	path       string
	address    string
	home       ResourceHome
	dispatcher *soap.Dispatcher
	locks      *resourceLocks
	providers  map[xmlutil.QName]PropertyProvider
	portTypes  []string
	// RequireResource causes author methods to fault when the EPR names
	// no resource id. Factories register with RegisterServiceMethod to
	// bypass the load.
	onDestroy []func(id string)
}

// ServiceConfig configures a Service.
type ServiceConfig struct {
	// Path is the service path hosted in the transport mux, e.g.
	// "/ExecutionService".
	Path string
	// Address is the base address EPRs are minted with, e.g.
	// "inproc://node-a" or "http://host:port" (no trailing slash).
	Address string
	// Home manages the service's WS-Resources. May be nil for pure
	// stateless services.
	Home ResourceHome
}

// NewService builds a service with the wrapper pipeline installed.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Path == "" || cfg.Path[0] != '/' {
		return nil, fmt.Errorf("wsrf: service path %q must begin with '/'", cfg.Path)
	}
	if cfg.Address == "" {
		return nil, fmt.Errorf("wsrf: service %s needs a base address", cfg.Path)
	}
	s := &Service{
		path:       cfg.Path,
		address:    cfg.Address,
		home:       cfg.Home,
		dispatcher: soap.NewDispatcher(),
		locks:      newResourceLocks(),
		providers:  make(map[xmlutil.QName]PropertyProvider),
	}
	return s, nil
}

// MustService is NewService that panics; for wiring code whose inputs
// are compile-time constants.
func MustService(cfg ServiceConfig) *Service {
	s, err := NewService(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Path returns the hosted path.
func (s *Service) Path() string { return s.path }

// Address returns the minting base address.
func (s *Service) Address() string { return s.address }

// Home returns the resource home (may be nil).
func (s *Service) Home() ResourceHome { return s.home }

// Dispatcher exposes the action dispatcher for transport registration.
func (s *Service) Dispatcher() *soap.Dispatcher { return s.dispatcher }

// Use installs interceptors (e.g. wssec verification) on the
// dispatcher, outside the wrapper pipeline.
func (s *Service) Use(ics ...soap.Interceptor) { s.dispatcher.Use(ics...) }

// EPR returns the service's resource-less EPR.
func (s *Service) EPR() wsa.EndpointReference {
	return wsa.NewEPR(s.address + s.path)
}

// EPRFor mints the EPR of one of this service's resources.
func (s *Service) EPRFor(id string) wsa.EndpointReference {
	if id == "" {
		return s.EPR()
	}
	return s.EPR().WithProperty(QResourceID, id)
}

// Enable composes a WSRF port type into the service.
func (s *Service) Enable(pt PortType) *Service {
	pt.Attach(s)
	s.portTypes = append(s.portTypes, pt.Name())
	return s
}

// PortTypes lists the names of enabled port types.
func (s *Service) PortTypes() []string {
	out := make([]string, len(s.portTypes))
	copy(out, s.portTypes)
	return out
}

// OnDestroy registers a hook observing resource destruction through the
// lifetime port type or DestroyResource.
func (s *Service) OnDestroy(fn func(id string)) { s.onDestroy = append(s.onDestroy, fn) }

// RegisterProperty declares a computed resource property (a
// [ResourceProperty] getter). State-document children are automatically
// visible as properties without registration.
func (s *Service) RegisterProperty(name xmlutil.QName, p PropertyProvider) {
	if _, dup := s.providers[name]; dup {
		panic("wsrf: duplicate property provider for " + name.String())
	}
	s.providers[name] = p
}

// RegisterMethod registers an author-defined resource method: the
// pipeline resolves and loads the addressed resource, serializes access
// per resource, runs fn, and saves the document back if changed.
func (s *Service) RegisterMethod(action string, fn MethodFunc) {
	s.dispatcher.Register(action, func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		return s.invokeWithResource(ctx, req, fn, true)
	})
}

// RegisterServiceMethod registers a method that does not address a
// resource (factories, queries across resources). No state is loaded.
func (s *Service) RegisterServiceMethod(action string, fn MethodFunc) {
	s.dispatcher.Register(action, func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		return s.invokeWithResource(ctx, req, fn, false)
	})
}

// invokeWithResource is the wrapper pipeline (paper Fig. 1): resolve the
// EPR, lock + load, dispatch, save-if-changed.
func (s *Service) invokeWithResource(ctx context.Context, req *soap.Envelope, fn MethodFunc, needResource bool) (*soap.Envelope, error) {
	info, _ := wsa.FromContext(ctx)
	inv := &Invocation{Service: s, Info: info, Req: req}
	inv.ResourceID = info.To.Property(QResourceID)

	if needResource {
		if inv.ResourceID == "" {
			return nil, NewBaseFault("ResourceUnknownFault", "invocation does not address a resource (missing ResourceID reference property)").SOAPFault(soap.CodeSender)
		}
		if s.home == nil {
			return nil, soap.ReceiverFault("wsrf: service %s has no resource home", s.path)
		}
		release := s.locks.acquire(inv.ResourceID)
		defer release()
		doc, err := s.home.Load(inv.ResourceID)
		if err != nil {
			return nil, resourceFault(err)
		}
		inv.Doc = doc
		inv.pristine = doc.Clone()
	}

	ctx = invocationContext(ctx, inv)
	respBody, err := fn(ctx, inv, req.Body)
	if err != nil {
		return nil, err
	}

	if needResource && !inv.destroyed && inv.Doc != nil && !inv.Doc.Equal(inv.pristine) {
		if err := s.home.Save(inv.ResourceID, inv.Doc); err != nil {
			return nil, soap.ReceiverFault("wsrf: save resource state: %v", err)
		}
	}
	if respBody == nil && len(inv.replyAtts) == 0 {
		return nil, nil
	}
	resp := soap.New(respBody)
	resp.Attachments = inv.replyAtts
	return resp, nil
}

// CreateResource provisions a new resource in the home and returns its
// EPR — the server-side half of every factory operation in the testbed
// (the FSS creating directory resources, the SS creating job sets...).
func (s *Service) CreateResource(id string, initial *xmlutil.Element) (wsa.EndpointReference, error) {
	if s.home == nil {
		return wsa.EndpointReference{}, fmt.Errorf("wsrf: service %s has no resource home", s.path)
	}
	if id == "" {
		id = wsa.NewMessageID()[len("urn:uuid:"):]
	}
	if err := s.home.Create(id, initial); err != nil {
		return wsa.EndpointReference{}, err
	}
	return s.EPRFor(id), nil
}

// DestroyResource removes a resource and runs destroy hooks.
func (s *Service) DestroyResource(id string) error {
	if s.home == nil {
		return fmt.Errorf("wsrf: service %s has no resource home", s.path)
	}
	if err := s.home.Destroy(id); err != nil {
		return err
	}
	for _, fn := range s.onDestroy {
		fn(id)
	}
	return nil
}

// LoadResource reads a resource's state outside an invocation (status
// displays, schedulers inspecting their own resources).
func (s *Service) LoadResource(id string) (*xmlutil.Element, error) {
	if s.home == nil {
		return nil, fmt.Errorf("wsrf: service %s has no resource home", s.path)
	}
	return s.home.Load(id)
}

// UpdateResource applies fn to a resource's state under the invocation
// lock and persists the result — for server-internal state transitions
// (a notification arriving marks a job Exited).
func (s *Service) UpdateResource(id string, fn func(doc *xmlutil.Element) error) error {
	if s.home == nil {
		return fmt.Errorf("wsrf: service %s has no resource home", s.path)
	}
	release := s.locks.acquire(id)
	defer release()
	doc, err := s.home.Load(id)
	if err != nil {
		return err
	}
	if err := fn(doc); err != nil {
		return err
	}
	return s.home.Save(id, doc)
}

func resourceFault(err error) error {
	return NewBaseFault("ResourceUnknownFault", err.Error()).SOAPFault(soap.CodeSender)
}
