package wsrf

import (
	"context"
	"sync"

	"uvacg/internal/soap"
	"uvacg/internal/wsa"
	"uvacg/internal/xmlutil"
)

// Invocation is the per-request execution context the wrapper pipeline
// hands to method implementations: which resource was addressed, its
// loaded state document, and the WS-Addressing message info. It is the
// Go rendering of WSRF.NET making "[Resource] data members" available to
// the invoked method.
type Invocation struct {
	// Service is the service being invoked.
	Service *Service
	// ResourceID is the id from the EPR's reference properties; empty
	// for service-level (resource-less) methods such as factories.
	ResourceID string
	// Doc is the resource's state document, loaded before dispatch.
	// Mutations are saved back automatically when the method returns
	// (only if the document actually changed, per the paper's "if the
	// value of some_data is changed ... will save that new value back").
	Doc *xmlutil.Element
	// Info carries the request's WS-Addressing headers.
	Info wsa.MessageInfo
	// Req is the full request envelope, giving methods access to binary
	// attachments referenced from the body (Envelope.ContentBytes).
	Req *soap.Envelope

	pristine  *xmlutil.Element  // snapshot for change detection
	destroyed bool              // set by Destroy to suppress the save-back
	replyAtts []soap.Attachment // reply attachments collected via Attach
}

// Attach externalizes data as a binary attachment of the eventual reply
// envelope and returns the include element to embed in the response
// body — the server-side half of the MTOM-style fast path. On bindings
// without attachment support the transport inlines the bytes as base64,
// so methods attach unconditionally.
func (inv *Invocation) Attach(data []byte) *xmlutil.Element {
	id := soap.NextAttachmentID(inv.replyAtts)
	inv.replyAtts = append(inv.replyAtts, soap.Attachment{ID: id, Data: data})
	return soap.IncludeElement(id)
}

// Property returns the text of a top-level state property, or "".
func (inv *Invocation) Property(name xmlutil.QName) string {
	if inv.Doc == nil {
		return ""
	}
	return inv.Doc.ChildText(name)
}

// SetProperty replaces (or appends) a top-level state property.
func (inv *Invocation) SetProperty(name xmlutil.QName, value string) {
	if inv.Doc == nil {
		return
	}
	if c := inv.Doc.Child(name); c != nil {
		c.Text = value
		return
	}
	inv.Doc.Append(xmlutil.NewElement(name, value))
}

// RemoveProperty deletes every top-level property with the given name,
// reporting the count removed.
func (inv *Invocation) RemoveProperty(name xmlutil.QName) int {
	if inv.Doc == nil {
		return 0
	}
	kept := inv.Doc.Children[:0]
	removed := 0
	for _, c := range inv.Doc.Children {
		if c.Name == name {
			removed++
			continue
		}
		kept = append(kept, c)
	}
	inv.Doc.Children = kept
	return removed
}

// EPR returns the full EPR of the addressed resource.
func (inv *Invocation) EPR() wsa.EndpointReference {
	return inv.Service.EPRFor(inv.ResourceID)
}

// markDestroyed tells the pipeline the resource is gone and its state
// must not be written back.
func (inv *Invocation) markDestroyed() { inv.destroyed = true }

type invKey struct{}

// invocationContext attaches inv for nested helpers.
func invocationContext(ctx context.Context, inv *Invocation) context.Context {
	return context.WithValue(ctx, invKey{}, inv)
}

// InvocationFrom recovers the current invocation.
func InvocationFrom(ctx context.Context) (*Invocation, bool) {
	inv, ok := ctx.Value(invKey{}).(*Invocation)
	return inv, ok
}

// resourceLocks serializes invocations per resource id, so two
// simultaneous method calls on one WS-Resource do not interleave their
// load/mutate/save cycles (the lost-update hazard of the paper's
// database-backed model).
type resourceLocks struct {
	mu    sync.Mutex
	locks map[string]*lockEntry
}

type lockEntry struct {
	mu   sync.Mutex
	refs int
}

func newResourceLocks() *resourceLocks {
	return &resourceLocks{locks: make(map[string]*lockEntry)}
}

// acquire locks id, returning the release func. Entries are
// reference-counted and removed when idle so destroyed resources do not
// leak lock state.
func (rl *resourceLocks) acquire(id string) func() {
	rl.mu.Lock()
	e := rl.locks[id]
	if e == nil {
		e = &lockEntry{}
		rl.locks[id] = e
	}
	e.refs++
	rl.mu.Unlock()

	e.mu.Lock()
	return func() {
		e.mu.Unlock()
		rl.mu.Lock()
		e.refs--
		if e.refs == 0 {
			delete(rl.locks, id)
		}
		rl.mu.Unlock()
	}
}
