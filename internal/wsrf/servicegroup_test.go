package wsrf

import (
	"context"
	"testing"

	"uvacg/internal/resourcedb"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/wsa"
	"uvacg/internal/xmlutil"
)

var (
	qProcessor = xmlutil.Q("urn:uvacg:nis", "Processor")
	qUtil      = xmlutil.Q("urn:uvacg:nis", "Utilization")
)

func processorContent(util string) *xmlutil.Element {
	return xmlutil.NewContainer(qProcessor, xmlutil.NewElement(qUtil, util))
}

func newGroupHarness(t *testing.T) (*Service, *ResourceClient) {
	t.Helper()
	store := resourcedb.NewStore()
	home := NewStateHome(store.MustTable("groups", resourcedb.BlobCodec{}))
	svc := MustService(ServiceConfig{Path: "/NodeInfo", Address: "inproc://master", Home: home})
	svc.Enable(ServiceGroupPortType{})
	svc.Enable(ResourcePropertiesPortType{})

	mux := soap.NewMux()
	mux.Handle(svc.Path(), svc.Dispatcher())
	network := transport.NewNetwork()
	network.Register("master", transport.NewServer(mux))
	client := transport.NewClient().WithNetwork(network)

	epr, err := svc.CreateResource("processors", NewServiceGroupDocument())
	if err != nil {
		t.Fatal(err)
	}
	return svc, NewResourceClient(client, epr)
}

func TestServiceGroupAddViaWire(t *testing.T) {
	svc, rc := newGroupHarness(t)
	ctx := context.Background()

	memberA := wsa.NewEPR("inproc://node-a/Utilization")
	memberB := wsa.NewEPR("inproc://node-b/Utilization")
	keyA, err := rc.Add(ctx, memberA, processorContent("10"))
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := rc.Add(ctx, memberB, processorContent("90"))
	if err != nil {
		t.Fatal(err)
	}
	if keyA == "" || keyB == "" || keyA == keyB {
		t.Fatalf("keys %q %q", keyA, keyB)
	}

	doc, err := svc.LoadResource("processors")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Entries(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries", len(entries))
	}
	if !entries[0].Member.Equal(memberA) || entries[0].Content.ChildText(qUtil) != "10" {
		t.Fatalf("entry[0] = %+v", entries[0])
	}
}

func TestServiceGroupReregistrationReplaces(t *testing.T) {
	svc, rc := newGroupHarness(t)
	ctx := context.Background()
	member := wsa.NewEPR("inproc://node-a/Utilization")

	key1, err := rc.Add(ctx, member, processorContent("10"))
	if err != nil {
		t.Fatal(err)
	}
	key2, err := rc.Add(ctx, member, processorContent("55"))
	if err != nil {
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Fatalf("re-registration minted new key: %q vs %q", key1, key2)
	}
	doc, _ := svc.LoadResource("processors")
	entries, _ := Entries(doc)
	if len(entries) != 1 {
		t.Fatalf("%d entries after re-registration", len(entries))
	}
	if entries[0].Content.ChildText(qUtil) != "55" {
		t.Fatalf("content not replaced: %v", entries[0].Content)
	}
}

func TestServiceGroupEntriesAreQueryable(t *testing.T) {
	_, rc := newGroupHarness(t)
	ctx := context.Background()
	if _, err := rc.Add(ctx, wsa.NewEPR("inproc://node-a/U"), processorContent("10")); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Add(ctx, wsa.NewEPR("inproc://node-b/U"), processorContent("90")); err != nil {
		t.Fatal(err)
	}
	// The Entry elements are resource properties: query them like any
	// other state (this is how the Scheduler could find idle nodes).
	matches, err := rc.Query(ctx, "/Entry/Content/Processor[Utilization='10']")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("query found %d idle processors", len(matches))
	}
}

func TestServiceGroupDocumentHelpers(t *testing.T) {
	doc := NewServiceGroupDocument()
	m1 := wsa.NewEPR("inproc://a/U")
	m2 := wsa.NewEPR("inproc://b/U")
	k1 := AddEntry(doc, m1, processorContent("1"))
	k2 := AddEntry(doc, m2, processorContent("2"))

	if !UpdateEntryContent(doc, k2, processorContent("77")) {
		t.Fatal("update failed")
	}
	entries, err := Entries(doc)
	if err != nil {
		t.Fatal(err)
	}
	if entries[1].Content.ChildText(qUtil) != "77" {
		t.Fatalf("content = %v", entries[1].Content)
	}
	if UpdateEntryContent(doc, "ghost", nil) {
		t.Fatal("update of missing key succeeded")
	}
	if !RemoveEntry(doc, k1) {
		t.Fatal("remove failed")
	}
	if RemoveEntry(doc, k1) {
		t.Fatal("double remove succeeded")
	}
	entries, _ = Entries(doc)
	if len(entries) != 1 || entries[0].Key != k2 {
		t.Fatalf("entries after remove: %+v", entries)
	}
	// Keys never collide, even after removals shrink the entry count.
	k3 := AddEntry(doc, wsa.NewEPR("inproc://c/U"), nil)
	if k3 == k2 {
		t.Fatalf("key collision: %q", k3)
	}
}

func TestServiceGroupAddRequestValidation(t *testing.T) {
	_, rc := newGroupHarness(t)
	ctx := context.Background()
	// Missing member EPR.
	_, err := rc.c.Call(ctx, rc.EPR(), ActionAdd, xmlutil.NewContainer(qAdd))
	if _, ok := soap.AsFault(err); !ok {
		t.Fatalf("want fault, got %v", err)
	}
}
