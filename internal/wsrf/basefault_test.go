package wsrf

import (
	"strings"
	"testing"

	"uvacg/internal/soap"
	"uvacg/internal/wsa"
	"uvacg/internal/xmlutil"
)

func TestBaseFaultRoundTrip(t *testing.T) {
	origin := wsa.NewEPR("inproc://node-a/ExecutionService").WithProperty(QResourceID, "job-3")
	inner := NewBaseFault("ProcSpawnFault", "process exited %d", 137)
	f := NewBaseFault("JobStartFault", "could not start job").
		WithOriginator(origin).
		WithCause(inner)

	data, err := xmlutil.MarshalElement(f.Element())
	if err != nil {
		t.Fatal(err)
	}
	el, err := xmlutil.UnmarshalElement(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBaseFault(el)
	if err != nil {
		t.Fatal(err)
	}
	if back.ErrorCode != "JobStartFault" || back.Description != "could not start job" {
		t.Fatalf("got %+v", back)
	}
	if !back.Originator.Equal(origin) {
		t.Fatalf("originator = %v", back.Originator)
	}
	if back.Cause == nil || back.Cause.ErrorCode != "ProcSpawnFault" {
		t.Fatalf("cause = %+v", back.Cause)
	}
	if back.Timestamp.IsZero() {
		t.Fatal("timestamp lost")
	}
}

func TestBaseFaultErrorString(t *testing.T) {
	f := NewBaseFault("A", "top").WithCause(NewBaseFault("B", "bottom"))
	msg := f.Error()
	if !strings.Contains(msg, "A: top") || !strings.Contains(msg, "B: bottom") {
		t.Fatalf("Error() = %q", msg)
	}
}

func TestBaseFaultThroughSOAPFault(t *testing.T) {
	f := NewBaseFault("ResourceUnknownFault", "gone")
	sf := f.SOAPFault(soap.CodeSender)
	if sf.Code != soap.CodeSender {
		t.Errorf("code = %q", sf.Code)
	}
	// A client receiving the fault recovers the typed document.
	data, err := sf.Envelope().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := soap.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := soap.ParseFault(env.Body)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := BaseFaultFromError(parsed)
	if !ok || bf.ErrorCode != "ResourceUnknownFault" {
		t.Fatalf("BaseFaultFromError = %v %v", bf, ok)
	}
}

func TestBaseFaultFromErrorNegative(t *testing.T) {
	if _, ok := BaseFaultFromError(soap.SenderFault("plain")); ok {
		t.Fatal("plain fault should not decode as BaseFault")
	}
	if _, ok := BaseFaultFromError(nil); ok {
		t.Fatal("nil error should not decode")
	}
}

func TestParseBaseFaultRejects(t *testing.T) {
	if _, err := ParseBaseFault(nil); err == nil {
		t.Fatal("nil element accepted")
	}
	if _, err := ParseBaseFault(xmlutil.NewElement(xmlutil.Q("urn:x", "y"), "")); err == nil {
		t.Fatal("wrong element accepted")
	}
}
