package wsrf

import (
	"context"
	"strings"

	"uvacg/internal/soap"
	"uvacg/internal/xmlutil"
)

// ResourcePropertiesPortType implements WS-ResourceProperties: the
// standardized view of a resource's state that §5 of the paper credits
// with letting one set of client plumbing work against every service.
// Enable it with Service.Enable(ResourcePropertiesPortType{}).
type ResourcePropertiesPortType struct{}

// Name implements PortType.
func (ResourcePropertiesPortType) Name() string { return "WS-ResourceProperties" }

// Attach implements PortType.
func (ResourcePropertiesPortType) Attach(s *Service) {
	s.RegisterMethod(ActionGetResourceProperty, s.handleGetResourceProperty)
	s.RegisterMethod(ActionGetResourcePropertyDocument, s.handleGetDocument)
	s.RegisterMethod(ActionGetMultipleResourceProperties, s.handleGetMultiple)
	s.RegisterMethod(ActionQueryResourceProperties, s.handleQuery)
	s.RegisterMethod(ActionSetResourceProperties, s.handleSet)
}

// resolveProperty produces the current value(s) of one property:
// provider-computed values win (the [ResourceProperty] getter), else
// matching children of the state document (the [Resource] data members).
func (s *Service) resolveProperty(ctx context.Context, inv *Invocation, name xmlutil.QName) ([]*xmlutil.Element, error) {
	if p, ok := s.providers[name]; ok {
		return p(ctx, inv)
	}
	if inv.Doc == nil {
		return nil, nil
	}
	var out []*xmlutil.Element
	for _, c := range inv.Doc.Children {
		if c.Name == name || (name.Space == "" && c.Name.Local == name.Local) {
			out = append(out, c.Clone())
		}
	}
	return out, nil
}

func invalidPropertyFault(name string) error {
	return NewBaseFault("InvalidResourcePropertyQNameFault", "no resource property %q", name).SOAPFault(soap.CodeSender)
}

func (s *Service) handleGetResourceProperty(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
	if body == nil || strings.TrimSpace(body.Text) == "" {
		return nil, soap.SenderFault("GetResourceProperty requires a property QName")
	}
	name, err := xmlutil.ParseQName(strings.TrimSpace(body.Text))
	if err != nil {
		return nil, soap.SenderFault("bad property QName: %v", err)
	}
	values, err := s.resolveProperty(ctx, inv, name)
	if err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, invalidPropertyFault(name.String())
	}
	resp := &xmlutil.Element{Name: qGetRPResponse}
	resp.Append(values...)
	return resp, nil
}

// handleGetDocument returns the entire resource properties document —
// the WS-ResourceProperties operation that gives clients the full view
// the WSDL advertises, computed properties included.
func (s *Service) handleGetDocument(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
	doc, err := s.effectiveDocument(ctx, inv)
	if err != nil {
		return nil, err
	}
	resp := &xmlutil.Element{Name: qGetRPDocumentResp}
	resp.Append(doc)
	return resp, nil
}

func (s *Service) handleGetMultiple(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
	if body == nil {
		return nil, soap.SenderFault("GetMultipleResourceProperties requires a request body")
	}
	resp := &xmlutil.Element{Name: qGetMultipleResponse}
	requested := body.ChildrenNamed(qResourceProperty)
	if len(requested) == 0 {
		return nil, soap.SenderFault("GetMultipleResourceProperties names no properties")
	}
	for _, r := range requested {
		name, err := xmlutil.ParseQName(strings.TrimSpace(r.Text))
		if err != nil {
			return nil, soap.SenderFault("bad property QName %q: %v", r.Text, err)
		}
		values, err := s.resolveProperty(ctx, inv, name)
		if err != nil {
			return nil, err
		}
		if len(values) == 0 {
			return nil, invalidPropertyFault(name.String())
		}
		resp.Append(values...)
	}
	return resp, nil
}

// effectiveDocument materializes the full resource properties document:
// the state document plus every computed property — what the resource's
// WSDL-declared properties document would contain.
func (s *Service) effectiveDocument(ctx context.Context, inv *Invocation) (*xmlutil.Element, error) {
	var doc *xmlutil.Element
	if inv.Doc != nil {
		doc = inv.Doc.Clone()
	} else {
		doc = xmlutil.NewContainer(xmlutil.Q(NSImpl, "ResourceProperties"))
	}
	for name, p := range s.providers {
		values, err := p(ctx, inv)
		if err != nil {
			return nil, err
		}
		// Computed values shadow same-named static children.
		kept := doc.Children[:0]
		for _, c := range doc.Children {
			if c.Name != name {
				kept = append(kept, c)
			}
		}
		doc.Children = kept
		doc.Append(values...)
	}
	return doc, nil
}

func (s *Service) handleQuery(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
	if body == nil {
		return nil, soap.SenderFault("QueryResourceProperties requires a request body")
	}
	expr := body.Child(qQueryExpression)
	if expr == nil {
		return nil, soap.SenderFault("QueryResourceProperties requires a QueryExpression")
	}
	if d := expr.Attr(qDialect); d != "" && d != XPathDialect {
		return nil, NewBaseFault("UnknownQueryExpressionDialectFault", "dialect %q unsupported (use %s)", d, XPathDialect).SOAPFault(soap.CodeSender)
	}
	path, err := xmlutil.CompilePath(expr.Text)
	if err != nil {
		return nil, NewBaseFault("InvalidQueryExpressionFault", "%v", err).SOAPFault(soap.CodeSender)
	}
	doc, err := s.effectiveDocument(ctx, inv)
	if err != nil {
		return nil, err
	}
	resp := &xmlutil.Element{Name: qQueryRPResponse}
	for _, m := range path.Select(doc) {
		resp.Append(m.Clone())
	}
	return resp, nil
}

func (s *Service) handleSet(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
	if body == nil || len(body.Children) == 0 {
		return nil, soap.SenderFault("SetResourceProperties requires Insert/Update/Delete components")
	}
	if inv.Doc == nil {
		return nil, soap.ReceiverFault("resource has no modifiable state document")
	}
	for _, op := range body.Children {
		switch op.Name {
		case qInsert:
			for _, el := range op.Children {
				if err := s.checkModifiable(el.Name); err != nil {
					return nil, err
				}
				inv.Doc.Append(el.Clone())
			}
		case qUpdate:
			// Group replacement values by name, then swap each group in.
			byName := make(map[xmlutil.QName][]*xmlutil.Element)
			var order []xmlutil.QName
			for _, el := range op.Children {
				if err := s.checkModifiable(el.Name); err != nil {
					return nil, err
				}
				if _, seen := byName[el.Name]; !seen {
					order = append(order, el.Name)
				}
				byName[el.Name] = append(byName[el.Name], el.Clone())
			}
			for _, name := range order {
				inv.RemoveProperty(name)
				inv.Doc.Append(byName[name]...)
			}
		case qDelete:
			raw := op.Attr(qResourcePropertyName)
			if raw == "" {
				return nil, soap.SenderFault("Delete requires a resourceProperty attribute")
			}
			name, err := xmlutil.ParseQName(raw)
			if err != nil {
				return nil, soap.SenderFault("bad Delete property QName: %v", err)
			}
			if err := s.checkModifiable(name); err != nil {
				return nil, err
			}
			inv.RemoveProperty(name)
		default:
			return nil, soap.SenderFault("unknown SetResourceProperties component %v", op.Name)
		}
	}
	return &xmlutil.Element{Name: qSetRPResponse}, nil
}

func (s *Service) checkModifiable(name xmlutil.QName) error {
	if _, computed := s.providers[name]; computed {
		return NewBaseFault("UnableToModifyResourcePropertyFault", "property %s is computed and read-only", name).SOAPFault(soap.CodeSender)
	}
	return nil
}

// Request builders used by clients (the "plumbing" §5 says standard
// properties make shareable).

// GetResourcePropertyDocumentRequest builds the whole-document request
// body.
func GetResourcePropertyDocumentRequest() *xmlutil.Element {
	return &xmlutil.Element{Name: qGetRPDocument}
}

// GetResourcePropertyRequest builds the request body for one property.
func GetResourcePropertyRequest(name xmlutil.QName) *xmlutil.Element {
	return xmlutil.NewElement(qGetResourceProperty, name.String())
}

// GetMultipleResourcePropertiesRequest builds the request body for
// several properties.
func GetMultipleResourcePropertiesRequest(names ...xmlutil.QName) *xmlutil.Element {
	req := &xmlutil.Element{Name: qGetMultiple}
	for _, n := range names {
		req.Append(xmlutil.NewElement(qResourceProperty, n.String()))
	}
	return req
}

// QueryResourcePropertiesRequest builds a query request body.
func QueryResourcePropertiesRequest(expr string) *xmlutil.Element {
	q := xmlutil.NewElement(qQueryExpression, expr)
	q.SetAttr(qDialect, XPathDialect)
	return xmlutil.NewContainer(qQueryRP, q)
}

// SetRequest assembles a SetResourceProperties request body from
// component elements built with InsertComponent, UpdateComponent and
// DeleteComponent.
func SetRequest(components ...*xmlutil.Element) *xmlutil.Element {
	req := &xmlutil.Element{Name: qSetRP}
	req.Append(components...)
	return req
}

// InsertComponent builds an Insert component.
func InsertComponent(values ...*xmlutil.Element) *xmlutil.Element {
	c := &xmlutil.Element{Name: qInsert}
	c.Append(values...)
	return c
}

// UpdateComponent builds an Update component.
func UpdateComponent(values ...*xmlutil.Element) *xmlutil.Element {
	c := &xmlutil.Element{Name: qUpdate}
	c.Append(values...)
	return c
}

// DeleteComponent builds a Delete component.
func DeleteComponent(name xmlutil.QName) *xmlutil.Element {
	c := &xmlutil.Element{Name: qDelete}
	c.SetAttr(qResourcePropertyName, name.String())
	return c
}
