package wsrf

import (
	"fmt"
	"time"

	"uvacg/internal/soap"
	"uvacg/internal/wsa"
	"uvacg/internal/xmlutil"
)

var (
	qBaseFault   = xmlutil.Q(NSBaseFaults, "BaseFault")
	qTimestamp   = xmlutil.Q(NSBaseFaults, "Timestamp")
	qOriginator  = xmlutil.Q(NSBaseFaults, "Originator")
	qErrorCode   = xmlutil.Q(NSBaseFaults, "ErrorCode")
	qDescription = xmlutil.Q(NSBaseFaults, "Description")
	qFaultCause  = xmlutil.Q(NSBaseFaults, "FaultCause")
)

// BaseFault is a WS-BaseFaults fault document: a typed, timestamped,
// chainable description of what went wrong, carried in the Detail of a
// SOAP fault. Every service in the testbed reports failures this way so
// clients can distinguish fault types programmatically.
type BaseFault struct {
	ErrorCode   string
	Description string
	Timestamp   time.Time
	Originator  wsa.EndpointReference
	Cause       *BaseFault
}

// NewBaseFault builds a fault with the current timestamp.
func NewBaseFault(code, format string, args ...any) *BaseFault {
	return &BaseFault{
		ErrorCode:   code,
		Description: fmt.Sprintf(format, args...),
		Timestamp:   time.Now().UTC(),
	}
}

// WithOriginator records the faulting resource and returns the fault.
func (f *BaseFault) WithOriginator(epr wsa.EndpointReference) *BaseFault {
	f.Originator = epr
	return f
}

// WithCause chains an underlying fault and returns the fault.
func (f *BaseFault) WithCause(cause *BaseFault) *BaseFault {
	f.Cause = cause
	return f
}

// Error implements the error interface.
func (f *BaseFault) Error() string {
	if f.Cause != nil {
		return fmt.Sprintf("%s: %s (caused by %v)", f.ErrorCode, f.Description, f.Cause)
	}
	return fmt.Sprintf("%s: %s", f.ErrorCode, f.Description)
}

// Element renders the fault document.
func (f *BaseFault) Element() *xmlutil.Element {
	el := xmlutil.NewContainer(qBaseFault,
		xmlutil.NewElement(qTimestamp, f.Timestamp.UTC().Format(time.RFC3339Nano)),
		xmlutil.NewElement(qErrorCode, f.ErrorCode),
		xmlutil.NewElement(qDescription, f.Description),
	)
	if !f.Originator.IsZero() {
		el.Append(f.Originator.ElementNamed(qOriginator))
	}
	if f.Cause != nil {
		el.Append(xmlutil.NewContainer(qFaultCause, f.Cause.Element()))
	}
	return el
}

// SOAPFault wraps the fault document in a SOAP fault of the given code,
// suitable for returning from a handler.
func (f *BaseFault) SOAPFault(code string) *soap.Fault {
	return &soap.Fault{Code: code, Reason: f.Error(), Detail: f.Element()}
}

// ParseBaseFault decodes a fault document, recursing into causes.
func ParseBaseFault(el *xmlutil.Element) (*BaseFault, error) {
	if el == nil || el.Name != qBaseFault {
		return nil, fmt.Errorf("wsrf: element is not a BaseFault")
	}
	f := &BaseFault{
		ErrorCode:   el.ChildText(qErrorCode),
		Description: el.ChildText(qDescription),
	}
	if ts := el.ChildText(qTimestamp); ts != "" {
		t, err := time.Parse(time.RFC3339Nano, ts)
		if err != nil {
			return nil, fmt.Errorf("wsrf: bad fault timestamp %q: %w", ts, err)
		}
		f.Timestamp = t
	}
	if orig := el.Child(qOriginator); orig != nil {
		epr, err := wsa.ParseEPR(orig)
		if err != nil {
			return nil, fmt.Errorf("wsrf: bad fault originator: %w", err)
		}
		f.Originator = epr
	}
	if cause := el.Child(qFaultCause); cause != nil && len(cause.Children) > 0 {
		inner, err := ParseBaseFault(cause.Children[0])
		if err != nil {
			return nil, err
		}
		f.Cause = inner
	}
	return f, nil
}

// BaseFaultFromError extracts the BaseFault carried in a *soap.Fault
// error, if the detail holds one.
func BaseFaultFromError(err error) (*BaseFault, bool) {
	sf, ok := soap.AsFault(err)
	if !ok || sf.Detail == nil {
		return nil, false
	}
	bf, perr := ParseBaseFault(sf.Detail)
	if perr != nil {
		return nil, false
	}
	return bf, true
}
