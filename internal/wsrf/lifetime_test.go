package wsrf

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestDestroyViaPortType(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	ctx := context.Background()

	var destroyed []string
	var mu sync.Mutex
	h.svc.OnDestroy(func(id string) {
		mu.Lock()
		destroyed = append(destroyed, id)
		mu.Unlock()
	})

	if err := rc.Destroy(ctx); err != nil {
		t.Fatal(err)
	}
	if h.svc.Home().Exists("job-1") {
		t.Fatal("resource survived Destroy")
	}
	mu.Lock()
	if len(destroyed) != 1 || destroyed[0] != "job-1" {
		t.Fatalf("destroy hooks saw %v", destroyed)
	}
	mu.Unlock()

	// Destroying again faults: the resource is gone.
	if err := rc.Destroy(ctx); err == nil {
		t.Fatal("double destroy succeeded")
	}
	// The save-back suppression worked: Destroy must not resurrect the
	// row via the pipeline's save.
	if h.svc.Home().Exists("job-1") {
		t.Fatal("pipeline save resurrected destroyed resource")
	}
}

func TestSetTerminationTimeAndReaper(t *testing.T) {
	h := newHarness(t)
	rc1 := h.mustCreate(t, "job-1")
	h.mustCreate(t, "job-2")
	ctx := context.Background()

	base := time.Now().UTC()
	if err := rc1.SetTerminationTime(ctx, base.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Termination time is itself a readable resource property.
	if got, err := rc1.GetPropertyText(ctx, QTerminationTime); err != nil || got == "" {
		t.Fatalf("TerminationTime property: %q %v", got, err)
	}

	clock := base
	reaper := NewReaper(h.svc, time.Hour).WithClock(func() time.Time { return clock })
	if n := reaper.SweepOnce(); n != 0 {
		t.Fatalf("premature reap of %d resources", n)
	}
	clock = base.Add(2 * time.Hour)
	if n := reaper.SweepOnce(); n != 1 {
		t.Fatalf("reaped %d resources, want 1", n)
	}
	if h.svc.Home().Exists("job-1") {
		t.Fatal("expired resource survived sweep")
	}
	if !h.svc.Home().Exists("job-2") {
		t.Fatal("unscheduled resource was reaped")
	}
}

func TestSetTerminationTimeIndefinite(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	ctx := context.Background()
	if err := rc.SetTerminationTime(ctx, time.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Clearing with the zero time removes the scheduled destruction.
	if err := rc.SetTerminationTime(ctx, time.Time{}); err != nil {
		t.Fatal(err)
	}
	doc, err := h.svc.LoadResource("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, scheduled := TerminationTimeOf(doc); scheduled {
		t.Fatal("termination time not cleared")
	}
}

func TestSetTerminationTimeRejectsGarbage(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	req := SetTerminationTimeRequest(time.Time{})
	req.Children[0].Text = "not-a-time"
	_, err := h.client.Call(context.Background(), rc.EPR(), ActionSetTerminationTime, req)
	if bf, ok := BaseFaultFromError(err); !ok || bf.ErrorCode != "UnableToSetTerminationTimeFault" {
		t.Fatalf("want UnableToSetTerminationTimeFault, got %v", err)
	}
}

func TestReaperStartStop(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	if err := rc.SetTerminationTime(context.Background(), time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	reaper := NewReaper(h.svc, time.Millisecond)
	reaper.Start()
	reaper.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for h.svc.Home().Exists("job-1") {
		if time.Now().After(deadline) {
			t.Fatal("reaper never collected the expired resource")
		}
		time.Sleep(time.Millisecond)
	}
	reaper.Stop()
	reaper.Stop() // idempotent
}

// TestReaperHonorsExtendAndCancel: re-setting the termination time
// postpones reaping — a sweep past the original deadline must not
// collect an extended resource — and clearing it cancels scheduled
// destruction entirely.
func TestReaperHonorsExtendAndCancel(t *testing.T) {
	h := newHarness(t)
	rcExtended := h.mustCreate(t, "job-extended")
	rcExpiring := h.mustCreate(t, "job-expiring")
	ctx := context.Background()
	base := time.Now().UTC()

	for _, rc := range []*ResourceClient{rcExtended, rcExpiring} {
		if err := rc.SetTerminationTime(ctx, base.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	// Extend one lease past the sweep horizon.
	if err := rcExtended.SetTerminationTime(ctx, base.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}

	clock := base.Add(2 * time.Hour)
	reaper := NewReaper(h.svc, time.Hour).WithClock(func() time.Time { return clock })
	if n := reaper.SweepOnce(); n != 1 {
		t.Fatalf("sweep past the original deadline reaped %d, want only the unextended resource", n)
	}
	if !h.svc.Home().Exists("job-extended") {
		t.Fatal("extended resource reaped at its superseded deadline")
	}
	if h.svc.Home().Exists("job-expiring") {
		t.Fatal("expired resource survived")
	}

	// Cancel the remaining lease: even a sweep far in the future must
	// leave the resource alone.
	if err := rcExtended.SetTerminationTime(ctx, time.Time{}); err != nil {
		t.Fatal(err)
	}
	clock = base.Add(100 * time.Hour)
	if n := reaper.SweepOnce(); n != 0 {
		t.Fatalf("sweep after cancel reaped %d resources", n)
	}
	if !h.svc.Home().Exists("job-extended") {
		t.Fatal("cancelled lease did not stop the reaper")
	}
}

func TestTerminationTimeOfMalformed(t *testing.T) {
	doc := jobStateDoc("Running", 0)
	if _, ok := TerminationTimeOf(doc); ok {
		t.Fatal("doc without TT reported scheduled")
	}
	if _, ok := TerminationTimeOf(nil); ok {
		t.Fatal("nil doc reported scheduled")
	}
}
