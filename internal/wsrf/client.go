package wsrf

import (
	"context"
	"fmt"
	"time"

	"uvacg/internal/transport"
	"uvacg/internal/wsa"
	"uvacg/internal/xmlutil"
)

// ResourceClient is the client-side "plumbing" for the standard WSRF
// port types — the higher-level interface §5 argues standardization
// enables: one client library that works against every WS-Resource,
// with no per-service proxy generation.
type ResourceClient struct {
	c   *transport.Client
	epr wsa.EndpointReference
}

// NewResourceClient binds a transport client to a WS-Resource's EPR.
func NewResourceClient(c *transport.Client, epr wsa.EndpointReference) *ResourceClient {
	return &ResourceClient{c: c, epr: epr}
}

// EPR returns the bound resource EPR.
func (rc *ResourceClient) EPR() wsa.EndpointReference { return rc.epr }

// GetProperty fetches one resource property's value elements.
func (rc *ResourceClient) GetProperty(ctx context.Context, name xmlutil.QName) ([]*xmlutil.Element, error) {
	body, err := rc.c.Call(ctx, rc.epr, ActionGetResourceProperty, GetResourcePropertyRequest(name))
	if err != nil {
		return nil, err
	}
	return body.Children, nil
}

// GetPropertyText fetches a single-valued property's text.
func (rc *ResourceClient) GetPropertyText(ctx context.Context, name xmlutil.QName) (string, error) {
	values, err := rc.GetProperty(ctx, name)
	if err != nil {
		return "", err
	}
	if len(values) == 0 {
		return "", fmt.Errorf("wsrf: property %s has no value", name)
	}
	return values[0].Text, nil
}

// GetDocument fetches the entire resource properties document.
func (rc *ResourceClient) GetDocument(ctx context.Context) (*xmlutil.Element, error) {
	body, err := rc.c.Call(ctx, rc.epr, ActionGetResourcePropertyDocument, GetResourcePropertyDocumentRequest())
	if err != nil {
		return nil, err
	}
	if body == nil || len(body.Children) == 0 {
		return nil, fmt.Errorf("wsrf: empty resource properties document")
	}
	return body.Children[0], nil
}

// GetMultiple fetches several properties in one round trip.
func (rc *ResourceClient) GetMultiple(ctx context.Context, names ...xmlutil.QName) (map[xmlutil.QName][]*xmlutil.Element, error) {
	body, err := rc.c.Call(ctx, rc.epr, ActionGetMultipleResourceProperties, GetMultipleResourcePropertiesRequest(names...))
	if err != nil {
		return nil, err
	}
	out := make(map[xmlutil.QName][]*xmlutil.Element)
	for _, el := range body.Children {
		out[el.Name] = append(out[el.Name], el)
	}
	return out, nil
}

// Query evaluates an XPath-lite expression over the resource properties
// document and returns the matches.
func (rc *ResourceClient) Query(ctx context.Context, expr string) ([]*xmlutil.Element, error) {
	body, err := rc.c.Call(ctx, rc.epr, ActionQueryResourceProperties, QueryResourcePropertiesRequest(expr))
	if err != nil {
		return nil, err
	}
	return body.Children, nil
}

// Set applies Insert/Update/Delete components.
func (rc *ResourceClient) Set(ctx context.Context, components ...*xmlutil.Element) error {
	_, err := rc.c.Call(ctx, rc.epr, ActionSetResourceProperties, SetRequest(components...))
	return err
}

// Destroy destroys the resource immediately.
func (rc *ResourceClient) Destroy(ctx context.Context) error {
	_, err := rc.c.Call(ctx, rc.epr, ActionDestroy, DestroyRequest())
	return err
}

// SetTerminationTime schedules destruction (zero time = indefinite).
func (rc *ResourceClient) SetTerminationTime(ctx context.Context, tt time.Time) error {
	_, err := rc.c.Call(ctx, rc.epr, ActionSetTerminationTime, SetTerminationTimeRequest(tt))
	return err
}

// Add registers a member with a service-group resource, returning the
// entry key.
func (rc *ResourceClient) Add(ctx context.Context, member wsa.EndpointReference, content *xmlutil.Element) (string, error) {
	body, err := rc.c.Call(ctx, rc.epr, ActionAdd, AddRequest(member, content))
	if err != nil {
		return "", err
	}
	return body.ChildText(xmlutil.Q(NSServiceGroup, "EntryKey")), nil
}
