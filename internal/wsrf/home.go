package wsrf

import (
	"fmt"

	"uvacg/internal/resourcedb"
	"uvacg/internal/xmlutil"
)

// ResourceHome creates, loads, saves and destroys stateful resources —
// the internal interface paper §3 describes ("defines functions for
// creating, destroying, loading and saving" WS-Resources) and that
// WSRF.NET 2.0 planned to expose to programmers. Implementations exist
// for database-backed state (StateHome) and services layer process- or
// directory-backed resources on top of it.
type ResourceHome interface {
	// Create registers a new resource with its initial state document.
	// Creating an existing id is an error.
	Create(id string, initial *xmlutil.Element) error
	// Load fetches the resource's current state document. A missing
	// resource returns ErrNoSuchResource.
	Load(id string) (*xmlutil.Element, error)
	// Save persists an updated state document for an existing resource.
	Save(id string, doc *xmlutil.Element) error
	// Destroy removes the resource. Destroying a missing resource
	// returns ErrNoSuchResource.
	Destroy(id string) error
	// Exists reports whether the resource is known.
	Exists(id string) bool
	// IDs enumerates all resources (used by the lifetime reaper and by
	// rediscovery queries).
	IDs() []string
}

// ErrNoSuchResource reports an EPR naming a resource the home does not
// know — the canonical WSRF addressing failure.
var ErrNoSuchResource = fmt.Errorf("wsrf: no such resource")

// StateHome is the "WS-Resource as state" home: resources live as rows
// in a resourcedb table, loaded and saved around each invocation.
type StateHome struct {
	table *resourcedb.Table
	// onDestroy, when set, observes destruction (services release live
	// handles — kill the process, remove the directory).
	onDestroy func(id string)
}

// NewStateHome wraps a database table.
func NewStateHome(table *resourcedb.Table) *StateHome {
	return &StateHome{table: table}
}

// OnDestroy registers a destruction observer and returns the home.
func (h *StateHome) OnDestroy(fn func(id string)) *StateHome {
	h.onDestroy = fn
	return h
}

// Create implements ResourceHome.
func (h *StateHome) Create(id string, initial *xmlutil.Element) error {
	if h.table.Exists(id) {
		return fmt.Errorf("wsrf: resource %q already exists", id)
	}
	if initial == nil {
		return fmt.Errorf("wsrf: resource %q needs an initial state document", id)
	}
	return h.table.Put(id, initial)
}

// Load implements ResourceHome.
func (h *StateHome) Load(id string) (*xmlutil.Element, error) {
	doc, ok, err := h.table.Get(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchResource, id)
	}
	return doc, nil
}

// Save implements ResourceHome.
func (h *StateHome) Save(id string, doc *xmlutil.Element) error {
	if !h.table.Exists(id) {
		return fmt.Errorf("%w: %q", ErrNoSuchResource, id)
	}
	return h.table.Put(id, doc)
}

// Destroy implements ResourceHome.
func (h *StateHome) Destroy(id string) error {
	ok, err := h.table.Delete(id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchResource, id)
	}
	if h.onDestroy != nil {
		h.onDestroy(id)
	}
	return nil
}

// Exists implements ResourceHome.
func (h *StateHome) Exists(id string) bool { return h.table.Exists(id) }

// IDs implements ResourceHome.
func (h *StateHome) IDs() []string { return h.table.IDs() }

// Table exposes the backing table for service-level queries.
func (h *StateHome) Table() *resourcedb.Table { return h.table }
