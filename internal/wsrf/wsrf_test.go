package wsrf

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"uvacg/internal/resourcedb"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/wsa"
	"uvacg/internal/xmlutil"
)

const nsJob = "urn:uvacg:es"

var (
	qStatus  = xmlutil.Q(nsJob, "Status")
	qCPUTime = xmlutil.Q(nsJob, "CPUTime")
	qBanner  = xmlutil.Q(nsJob, "Banner")
	qIncr    = xmlutil.Q(nsJob, "Increment")
	qCreate  = xmlutil.Q(nsJob, "CreateJob")
	qCount   = xmlutil.Q(nsJob, "Counter")
)

const (
	actionIncrement = nsJob + "/Increment"
	actionCreate    = nsJob + "/CreateJob"
)

// countingHome wraps a home and counts load/save traffic so tests can
// assert the pipeline's database behaviour.
type countingHome struct {
	ResourceHome
	mu    sync.Mutex
	loads int
	saves int
}

func (h *countingHome) Load(id string) (*xmlutil.Element, error) {
	h.mu.Lock()
	h.loads++
	h.mu.Unlock()
	return h.ResourceHome.Load(id)
}

func (h *countingHome) Save(id string, doc *xmlutil.Element) error {
	h.mu.Lock()
	h.saves++
	h.mu.Unlock()
	return h.ResourceHome.Save(id, doc)
}

func (h *countingHome) counts() (int, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.loads, h.saves
}

// testHarness hosts one job-like service on an inproc network.
type testHarness struct {
	svc    *Service
	home   *countingHome
	client *transport.Client
}

func jobStateDoc(status string, cpu int) *xmlutil.Element {
	return xmlutil.NewContainer(xmlutil.Q(nsJob, "JobState"),
		xmlutil.NewElement(qStatus, status),
		xmlutil.NewElement(qCPUTime, strconv.Itoa(cpu)),
	)
}

func newHarness(t *testing.T) *testHarness {
	t.Helper()
	store := resourcedb.NewStore()
	home := &countingHome{ResourceHome: NewStateHome(store.MustTable("jobs", resourcedb.StructuredCodec{}))}
	svc := MustService(ServiceConfig{Path: "/ExecutionService", Address: "inproc://node-a", Home: home})
	svc.Enable(ResourcePropertiesPortType{})
	svc.Enable(LifetimePortType{})

	// A computed property, the [ResourceProperty] getter of Fig. 2:
	// "At <time> the string is <some_data>" — here a banner derived
	// from the state.
	svc.RegisterProperty(qBanner, func(ctx context.Context, inv *Invocation) ([]*xmlutil.Element, error) {
		return []*xmlutil.Element{xmlutil.NewElement(qBanner, "job is "+inv.Property(qStatus))}, nil
	})

	// An author method mutating state (the wrapper must save it back).
	svc.RegisterMethod(actionIncrement, func(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
		n, _ := strconv.Atoi(inv.Property(qCPUTime))
		inv.SetProperty(qCPUTime, strconv.Itoa(n+1))
		return xmlutil.NewElement(qCount, strconv.Itoa(n+1)), nil
	})

	// A factory (service-level method, no resource addressed).
	svc.RegisterServiceMethod(actionCreate, func(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
		epr, err := svc.CreateResource("", jobStateDoc("Running", 0))
		if err != nil {
			return nil, err
		}
		return epr.Element(), nil
	})

	mux := soap.NewMux()
	mux.Handle(svc.Path(), svc.Dispatcher())
	network := transport.NewNetwork()
	network.Register("node-a", transport.NewServer(mux))
	return &testHarness{svc: svc, home: home, client: transport.NewClient().WithNetwork(network)}
}

func (h *testHarness) mustCreate(t *testing.T, id string) *ResourceClient {
	t.Helper()
	epr, err := h.svc.CreateResource(id, jobStateDoc("Running", 10))
	if err != nil {
		t.Fatal(err)
	}
	return NewResourceClient(h.client, epr)
}

func TestGetResourcePropertyStaticAndComputed(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	ctx := context.Background()

	status, err := rc.GetPropertyText(ctx, qStatus)
	if err != nil {
		t.Fatal(err)
	}
	if status != "Running" {
		t.Errorf("status = %q", status)
	}
	banner, err := rc.GetPropertyText(ctx, qBanner)
	if err != nil {
		t.Fatal(err)
	}
	if banner != "job is Running" {
		t.Errorf("computed property = %q", banner)
	}
}

func TestGetResourcePropertyUnknownFaults(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	_, err := rc.GetProperty(context.Background(), xmlutil.Q(nsJob, "Nope"))
	bf, ok := BaseFaultFromError(err)
	if !ok || bf.ErrorCode != "InvalidResourcePropertyQNameFault" {
		t.Fatalf("want InvalidResourcePropertyQNameFault, got %v", err)
	}
}

func TestGetMultipleResourceProperties(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	got, err := rc.GetMultiple(context.Background(), qStatus, qCPUTime, qBanner)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d properties", len(got))
	}
	if got[qCPUTime][0].Text != "10" {
		t.Errorf("cpu = %q", got[qCPUTime][0].Text)
	}
}

func TestQueryResourceProperties(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	ctx := context.Background()

	matches, err := rc.Query(ctx, "/Status[text()='Running']")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("query matches = %d", len(matches))
	}
	// Computed properties are part of the queryable document.
	matches, err = rc.Query(ctx, "/Banner")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Text != "job is Running" {
		t.Fatalf("computed query = %v", matches)
	}
	// Invalid expression → typed fault.
	_, err = rc.Query(ctx, "/a[")
	if bf, ok := BaseFaultFromError(err); !ok || bf.ErrorCode != "InvalidQueryExpressionFault" {
		t.Fatalf("want InvalidQueryExpressionFault, got %v", err)
	}
}

func TestQueryRejectsForeignDialect(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	q := xmlutil.NewElement(qQueryExpression, "/Status")
	q.SetAttr(qDialect, "http://www.w3.org/TR/1999/REC-xpath-19991116")
	_, err := h.client.Call(context.Background(), rc.EPR(), ActionQueryResourceProperties, xmlutil.NewContainer(qQueryRP, q))
	if bf, ok := BaseFaultFromError(err); !ok || bf.ErrorCode != "UnknownQueryExpressionDialectFault" {
		t.Fatalf("want UnknownQueryExpressionDialectFault, got %v", err)
	}
}

func TestSetResourceProperties(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	ctx := context.Background()
	qOwner := xmlutil.Q(nsJob, "Owner")

	// Insert.
	if err := rc.Set(ctx, InsertComponent(xmlutil.NewElement(qOwner, "wasson"))); err != nil {
		t.Fatal(err)
	}
	if got, _ := rc.GetPropertyText(ctx, qOwner); got != "wasson" {
		t.Fatalf("after insert, owner = %q", got)
	}
	// Update.
	if err := rc.Set(ctx, UpdateComponent(xmlutil.NewElement(qStatus, "Exited"))); err != nil {
		t.Fatal(err)
	}
	if got, _ := rc.GetPropertyText(ctx, qStatus); got != "Exited" {
		t.Fatalf("after update, status = %q", got)
	}
	// Delete.
	if err := rc.Set(ctx, DeleteComponent(qOwner)); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.GetProperty(ctx, qOwner); err == nil {
		t.Fatal("deleted property still readable")
	}
	// Computed properties are read-only.
	err := rc.Set(ctx, UpdateComponent(xmlutil.NewElement(qBanner, "nope")))
	if bf, ok := BaseFaultFromError(err); !ok || bf.ErrorCode != "UnableToModifyResourcePropertyFault" {
		t.Fatalf("want UnableToModifyResourcePropertyFault, got %v", err)
	}
}

func TestWrapperPipelineSavesOnlyChanges(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	ctx := context.Background()

	// A pure read loads but must not save.
	if _, err := rc.GetPropertyText(ctx, qStatus); err != nil {
		t.Fatal(err)
	}
	loads, saves := h.home.counts()
	if loads != 1 || saves != 0 {
		t.Fatalf("after read: loads=%d saves=%d", loads, saves)
	}
	// A mutating method loads and saves.
	body, err := h.client.Call(ctx, rc.EPR(), actionIncrement, xmlutil.NewElement(qIncr, ""))
	if err != nil {
		t.Fatal(err)
	}
	if body.Text != "11" {
		t.Fatalf("increment returned %q", body.Text)
	}
	loads, saves = h.home.counts()
	if loads != 2 || saves != 1 {
		t.Fatalf("after write: loads=%d saves=%d", loads, saves)
	}
	// The change persisted.
	if got, _ := rc.GetPropertyText(ctx, qCPUTime); got != "11" {
		t.Fatalf("persisted cpu = %q", got)
	}
}

func TestInvokeUnknownResourceFaults(t *testing.T) {
	h := newHarness(t)
	ghost := h.svc.EPRFor("no-such-job")
	_, err := h.client.Call(context.Background(), ghost, ActionGetResourceProperty, GetResourcePropertyRequest(qStatus))
	bf, ok := BaseFaultFromError(err)
	if !ok || bf.ErrorCode != "ResourceUnknownFault" {
		t.Fatalf("want ResourceUnknownFault, got %v", err)
	}
}

func TestInvokeWithoutResourceIDFaults(t *testing.T) {
	h := newHarness(t)
	_, err := h.client.Call(context.Background(), h.svc.EPR(), ActionGetResourceProperty, GetResourcePropertyRequest(qStatus))
	if bf, ok := BaseFaultFromError(err); !ok || bf.ErrorCode != "ResourceUnknownFault" {
		t.Fatalf("want ResourceUnknownFault, got %v", err)
	}
}

func TestFactoryServiceMethod(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	body, err := h.client.Call(ctx, h.svc.EPR(), actionCreate, xmlutil.NewElement(qCreate, ""))
	if err != nil {
		t.Fatal(err)
	}
	epr, err := wsa.ParseEPR(body)
	if err != nil {
		t.Fatal(err)
	}
	if epr.Property(QResourceID) == "" {
		t.Fatal("factory EPR has no resource id")
	}
	rc := NewResourceClient(h.client, epr)
	if got, err := rc.GetPropertyText(ctx, qStatus); err != nil || got != "Running" {
		t.Fatalf("new resource: %q %v", got, err)
	}
}

func TestPerResourceSerialization(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	ctx := context.Background()
	const workers, each = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := h.client.Call(ctx, rc.EPR(), actionIncrement, xmlutil.NewElement(qIncr, "")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := rc.GetPropertyText(ctx, qCPUTime)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(10 + workers*each)
	if got != want {
		t.Fatalf("lost updates: cpu = %s, want %s", got, want)
	}
}

func TestServiceConfigValidation(t *testing.T) {
	if _, err := NewService(ServiceConfig{Path: "bad", Address: "inproc://a"}); err == nil {
		t.Error("relative path accepted")
	}
	if _, err := NewService(ServiceConfig{Path: "/S"}); err == nil {
		t.Error("missing address accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustService should panic on bad config")
			}
		}()
		MustService(ServiceConfig{})
	}()
}

func TestDuplicatePropertyProviderPanics(t *testing.T) {
	h := newHarness(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.svc.RegisterProperty(qBanner, nil)
}

func TestPortTypeNames(t *testing.T) {
	h := newHarness(t)
	got := h.svc.PortTypes()
	if len(got) != 2 || got[0] != "WS-ResourceProperties" || got[1] != "WS-ResourceLifetime" {
		t.Fatalf("port types = %v", got)
	}
}

func TestEPRForEmptyIDIsServiceEPR(t *testing.T) {
	h := newHarness(t)
	if !h.svc.EPRFor("").Equal(h.svc.EPR()) {
		t.Fatal("EPRFor(\"\") should be the service EPR")
	}
}

func TestUpdateResourceInternal(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	err := h.svc.UpdateResource("job-1", func(doc *xmlutil.Element) error {
		doc.Child(qStatus).Text = "Exited"
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := rc.GetPropertyText(context.Background(), qStatus); got != "Exited" {
		t.Fatalf("status = %q", got)
	}
	if err := h.svc.UpdateResource("ghost", func(doc *xmlutil.Element) error { return nil }); err == nil {
		t.Fatal("update of missing resource should fail")
	}
}
