package wsrf

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uvacg/internal/soap"
	"uvacg/internal/transport"
)

// TestForeignClientWireFormat drives the service with a hand-written
// SOAP envelope posted over plain HTTP — the kind of message a non-Go
// WSRF implementation (WSRF.NET itself, or Globus Toolkit 4, whose
// interoperability the paper's conclusion was beginning to test) would
// put on the wire. No Go client code is involved on the request path.
func TestForeignClientWireFormat(t *testing.T) {
	h := newHarness(t)
	if _, err := h.svc.CreateResource("job-7", jobStateDoc("Running", 5)); err != nil {
		t.Fatal(err)
	}
	mux := soap.NewMux()
	mux.Handle(h.svc.Path(), h.svc.Dispatcher())
	hs := httptest.NewServer(transport.NewHTTPHandler(transport.NewServer(mux)))
	defer hs.Close()

	request := `<?xml version="1.0" encoding="utf-8"?>
<s:Envelope xmlns:s="http://www.w3.org/2003/05/soap-envelope"
            xmlns:wsa="http://schemas.xmlsoap.org/ws/2004/08/addressing"
            xmlns:impl="urn:uvacg:wsrf"
            xmlns:wsrp="http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties-1.2-draft-01.xsd">
  <s:Header>
    <wsa:To>` + hs.URL + `/ExecutionService</wsa:To>
    <wsa:Action>` + ActionGetResourceProperty + `</wsa:Action>
    <wsa:MessageID>urn:uuid:00000000-0000-4000-8000-000000000001</wsa:MessageID>
    <impl:ResourceID wsa:isReferenceParameter="true">job-7</impl:ResourceID>
  </s:Header>
  <s:Body>
    <wsrp:GetResourceProperty>{urn:uvacg:es}Status</wsrp:GetResourceProperty>
  </s:Body>
</s:Envelope>`

	resp, err := http.Post(hs.URL+"/ExecutionService", "application/soap+xml", strings.NewReader(request))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	env, err := soap.Unmarshal(body)
	if err != nil {
		t.Fatalf("reply not SOAP: %v\n%s", err, body)
	}
	if soap.IsFault(env.Body) {
		f, _ := soap.ParseFault(env.Body)
		t.Fatalf("fault: %v", f)
	}
	if !bytes.Contains(body, []byte("Running")) {
		t.Fatalf("reply missing property value:\n%s", body)
	}
	// Reply carries WS-Addressing response headers.
	found := false
	for _, hdr := range env.Headers {
		if hdr.Name.Local == "RelatesTo" && hdr.Text == "urn:uuid:00000000-0000-4000-8000-000000000001" {
			found = true
		}
	}
	if !found {
		t.Fatal("reply has no RelatesTo correlating the request")
	}
}

// TestForeignClientFaultWireFormat checks that a foreign client asking
// for a missing resource gets a well-formed SOAP fault with a
// WS-BaseFaults detail, not a transport error.
func TestForeignClientFaultWireFormat(t *testing.T) {
	h := newHarness(t)
	mux := soap.NewMux()
	mux.Handle(h.svc.Path(), h.svc.Dispatcher())
	hs := httptest.NewServer(transport.NewHTTPHandler(transport.NewServer(mux)))
	defer hs.Close()

	request := `<?xml version="1.0"?>
<s:Envelope xmlns:s="http://www.w3.org/2003/05/soap-envelope"
            xmlns:wsa="http://schemas.xmlsoap.org/ws/2004/08/addressing"
            xmlns:impl="urn:uvacg:wsrf"
            xmlns:wsrp="http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties-1.2-draft-01.xsd">
  <s:Header>
    <wsa:Action>` + ActionGetResourceProperty + `</wsa:Action>
    <impl:ResourceID wsa:isReferenceParameter="true">no-such-job</impl:ResourceID>
  </s:Header>
  <s:Body><wsrp:GetResourceProperty>{urn:uvacg:es}Status</wsrp:GetResourceProperty></s:Body>
</s:Envelope>`

	resp, err := http.Post(hs.URL+"/ExecutionService", "application/soap+xml", strings.NewReader(request))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	env, err := soap.Unmarshal(body)
	if err != nil {
		t.Fatalf("reply not SOAP: %v", err)
	}
	if !soap.IsFault(env.Body) {
		t.Fatalf("expected fault, got %s", body)
	}
	f, err := soap.ParseFault(env.Body)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := ParseBaseFault(f.Detail)
	if err != nil {
		t.Fatalf("fault detail is not a BaseFault: %v\n%s", err, body)
	}
	if bf.ErrorCode != "ResourceUnknownFault" {
		t.Fatalf("fault code %q", bf.ErrorCode)
	}
}
