package wsrf

import (
	"context"
	"testing"
)

func TestGetResourcePropertyDocument(t *testing.T) {
	h := newHarness(t)
	rc := h.mustCreate(t, "job-1")
	doc, err := rc.GetDocument(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if doc.ChildText(qStatus) != "Running" {
		t.Fatalf("document missing state: %s", doc)
	}
	// Computed properties appear in the document too.
	if doc.ChildText(qBanner) != "job is Running" {
		t.Fatalf("document missing computed property: %s", doc)
	}
}
