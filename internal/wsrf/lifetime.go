package wsrf

import (
	"context"
	"strings"
	"sync"
	"time"

	"uvacg/internal/soap"
	"uvacg/internal/xmlutil"
)

// LifetimePortType implements WS-ResourceLifetime: immediate destruction
// (Destroy) and scheduled destruction (SetTerminationTime). The
// termination time is itself a resource property, visible through
// WS-ResourceProperties.
type LifetimePortType struct{}

// Name implements PortType.
func (LifetimePortType) Name() string { return "WS-ResourceLifetime" }

// Attach implements PortType.
func (LifetimePortType) Attach(s *Service) {
	s.RegisterMethod(ActionDestroy, s.handleDestroy)
	s.RegisterMethod(ActionSetTerminationTime, s.handleSetTerminationTime)
}

func (s *Service) handleDestroy(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
	if err := s.DestroyResource(inv.ResourceID); err != nil {
		return nil, NewBaseFault("ResourceNotDestroyedFault", "%v", err).SOAPFault(soap.CodeReceiver)
	}
	inv.markDestroyed()
	return &xmlutil.Element{Name: qDestroyResponse}, nil
}

func (s *Service) handleSetTerminationTime(ctx context.Context, inv *Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
	if body == nil {
		return nil, soap.SenderFault("SetTerminationTime requires a request body")
	}
	requested := strings.TrimSpace(body.ChildText(qRequestedTermTime))
	now := time.Now().UTC()
	if requested == "" {
		// Empty/absent termination time = live indefinitely.
		inv.RemoveProperty(QTerminationTime)
		resp := xmlutil.NewContainer(qSetTermTimeResponse,
			xmlutil.NewElement(qNewTermTime, ""),
			xmlutil.NewElement(qCurrentTime, now.Format(time.RFC3339Nano)),
		)
		return resp, nil
	}
	tt, err := time.Parse(time.RFC3339Nano, requested)
	if err != nil {
		return nil, NewBaseFault("UnableToSetTerminationTimeFault", "bad termination time %q: %v", requested, err).SOAPFault(soap.CodeSender)
	}
	inv.SetProperty(QTerminationTime, tt.UTC().Format(time.RFC3339Nano))
	resp := xmlutil.NewContainer(qSetTermTimeResponse,
		xmlutil.NewElement(qNewTermTime, tt.UTC().Format(time.RFC3339Nano)),
		xmlutil.NewElement(qCurrentTime, now.Format(time.RFC3339Nano)),
	)
	return resp, nil
}

// SetTerminationTimeRequest builds the client request body. A zero time
// requests indefinite lifetime.
func SetTerminationTimeRequest(tt time.Time) *xmlutil.Element {
	text := ""
	if !tt.IsZero() {
		text = tt.UTC().Format(time.RFC3339Nano)
	}
	return xmlutil.NewContainer(qSetTermTime, xmlutil.NewElement(qRequestedTermTime, text))
}

// DestroyRequest builds the client request body.
func DestroyRequest() *xmlutil.Element { return &xmlutil.Element{Name: qDestroy} }

// TerminationTimeOf reads a state document's scheduled termination, if
// any.
func TerminationTimeOf(doc *xmlutil.Element) (time.Time, bool) {
	if doc == nil {
		return time.Time{}, false
	}
	text := strings.TrimSpace(doc.ChildText(QTerminationTime))
	if text == "" {
		return time.Time{}, false
	}
	tt, err := time.Parse(time.RFC3339Nano, text)
	if err != nil {
		return time.Time{}, false
	}
	return tt, true
}

// Reaper sweeps a service's resources, destroying any whose termination
// time has passed — the background half of scheduled destruction.
type Reaper struct {
	service  *Service
	interval time.Duration
	now      func() time.Time

	mu      sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
}

// NewReaper builds a reaper over s sweeping at the given interval.
func NewReaper(s *Service, interval time.Duration) *Reaper {
	return &Reaper{service: s, interval: interval, now: time.Now}
}

// WithClock overrides the time source (tests, simulated time).
func (r *Reaper) WithClock(now func() time.Time) *Reaper {
	r.now = now
	return r
}

// SweepOnce destroys every expired resource and returns the count.
func (r *Reaper) SweepOnce() int {
	home := r.service.Home()
	if home == nil {
		return 0
	}
	now := r.now()
	destroyed := 0
	for _, id := range home.IDs() {
		doc, err := home.Load(id)
		if err != nil {
			continue // destroyed concurrently
		}
		if tt, ok := TerminationTimeOf(doc); ok && !tt.After(now) {
			if err := r.service.DestroyResource(id); err == nil {
				destroyed++
			}
		}
	}
	return destroyed
}

// Start launches the background sweep loop. Stop with Stop.
func (r *Reaper) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.stopped = make(chan struct{})
	go func(stop, stopped chan struct{}) {
		defer close(stopped)
		ticker := time.NewTicker(r.interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				r.SweepOnce()
			}
		}
	}(r.stop, r.stopped)
}

// Stop halts the sweep loop and waits for it to exit.
func (r *Reaper) Stop() {
	r.mu.Lock()
	stop, stopped := r.stop, r.stopped
	r.stop, r.stopped = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-stopped
	}
}
