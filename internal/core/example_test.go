package core_test

import (
	"context"
	"fmt"
	"time"

	"uvacg/internal/core"
	"uvacg/internal/wssec"
)

// Example_runJobSet is the library's minimal end-to-end flow: assemble a
// grid, submit a one-job job set from a client, wait for the broker's
// completion notification, and fetch the output from wherever the job
// ran.
func Example_runJobSet() {
	grid, err := core.NewGrid(core.GridConfig{
		Nodes:    []core.NodeSpec{{Name: "win-a", Cores: 2, SpeedMHz: 2800}},
		Accounts: wssec.StaticAccounts{"scientist": "secret"},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer grid.Close()

	client, err := grid.NewClient(wssec.Credentials{Username: "scientist", Password: "secret"}, false)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer client.Close()

	client.AddFile("hello.app", core.Script(
		"write greeting.txt hello from the grid",
		"exit 0",
	))
	spec := core.NewJobSet("example").
		Add("hello", core.Local("hello.app")).
		Outputs("greeting.txt").
		Spec()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sub, err := client.Submit(ctx, spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	status, err := sub.Wait(ctx)
	if err != nil {
		fmt.Println(err)
		return
	}
	out, err := sub.FetchOutput(ctx, "hello", "greeting.txt")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(status)
	fmt.Println(string(out))
	// Output:
	// Completed
	// hello from the grid
}
