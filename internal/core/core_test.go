package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"uvacg/internal/services/scheduler"
	"uvacg/internal/wsa"
	"uvacg/internal/wsn"
	"uvacg/internal/wsrf"
	"uvacg/internal/wssec"
	"uvacg/internal/xmlutil"
)

var testAccounts = wssec.StaticAccounts{"scientist": "pw"}

func testGrid(t *testing.T, nodes ...NodeSpec) *Grid {
	t.Helper()
	if len(nodes) == 0 {
		nodes = []NodeSpec{
			{Name: "win-a", Cores: 2, SpeedMHz: 2800, RAMMB: 1024},
			{Name: "win-b", Cores: 1, SpeedMHz: 1400, RAMMB: 512},
			{Name: "win-c", Cores: 4, SpeedMHz: 2000, RAMMB: 2048},
		}
	}
	g, err := NewGrid(GridConfig{
		Nodes:    nodes,
		Accounts: testAccounts,
		UnitTime: 5 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func testClient(t *testing.T, g *Grid) *Client {
	t.Helper()
	c, err := g.NewClient(wssec.Credentials{Username: "scientist", Password: "pw"}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestF3_FullScenario walks the paper's Fig. 3 sequence end to end: a
// three-job pipeline with cross-machine data movement, asynchronous
// staging, process spawning under the submitted account, and event
// broadcast through the broker to both the Scheduler and the client.
func TestF3_FullScenario(t *testing.T) {
	g := testGrid(t)
	c := testClient(t, g)
	ctx := testCtx(t)

	c.AddFile("gen.app", Script(
		"compute 20",
		"write data.txt 7 11 13",
		"exit 0",
	))
	c.AddFile("sum.app", Script(
		"read data.txt",
		"compute 20",
		"transform data.txt total.txt sum",
		"exit 0",
	))
	c.AddFile("fmt.app", Script(
		"read total.txt",
		"transform total.txt report.txt copy",
		"exit 0",
	))

	spec := NewJobSet("pipeline").
		Add("gen", Local("gen.app")).Outputs("data.txt").
		Add("sum", Local("sum.app")).Input("data.txt", Output("gen", "data.txt")).Outputs("total.txt").
		Add("fmt", Local("fmt.app")).Input("total.txt", Output("sum", "total.txt")).Outputs("report.txt").
		Spec()

	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sub.Topic, "jobset-") {
		t.Errorf("topic = %q", sub.Topic)
	}

	status, err := sub.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != scheduler.SetCompleted {
		_, detail := sub.Status()
		t.Fatalf("status = %s (%s)", status, detail)
	}

	// The dependency chain's data really flowed: 7+11+13 = 31.
	out, err := sub.FetchOutput(ctx, "fmt", "report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "31" {
		t.Fatalf("pipeline result = %q, want 31", out)
	}

	// The client saw the lifecycle events for each job (step 9/10).
	// One-way delivery is unordered, so straggler events may land a
	// moment after jobset/completed: drain with a deadline.
	want := map[string]bool{
		"gen/directory": true, "gen/started": true, "gen/exited": true,
		"sum/exited": true, "fmt/exited": true, "jobset/completed": true,
	}
	kinds := make(map[string]bool)
	deadline := time.After(5 * time.Second)
	for len(want) > 0 {
		select {
		case n := <-sub.Events():
			segs := strings.Split(n.Topic, "/")
			if len(segs) == 3 {
				key := segs[1] + "/" + segs[2]
				kinds[key] = true
				delete(want, key)
			}
		case <-deadline:
			for missing := range want {
				t.Errorf("client never saw event %q (saw %v)", missing, kinds)
			}
			want = nil
		}
	}

	// The job-set WS-Resource reflects completion and placement — the
	// standardized client view of state.
	rc := wsrf.NewResourceClient(g.Client, sub.JobSet)
	if got, err := rc.GetPropertyText(ctx, scheduler.QStatus); err != nil || got != scheduler.SetCompleted {
		t.Fatalf("job set status property = %q %v", got, err)
	}
	states, err := rc.GetProperty(ctx, scheduler.QJobState)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("%d job states", len(states))
	}
	for _, st := range states {
		if st.Attr(xmlutil.Q("", "status")) != scheduler.JobCompleted {
			t.Errorf("job %s status %s", st.Attr(xmlutil.Q("", "name")), st.Attr(xmlutil.Q("", "status")))
		}
		if st.Attr(xmlutil.Q("", "node")) == "" {
			t.Errorf("job %s has no node", st.Attr(xmlutil.Q("", "name")))
		}
	}
}

func TestSingleJobQuickstart(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo", Cores: 1, SpeedMHz: 1000})
	c := testClient(t, g)
	ctx := testCtx(t)
	c.AddFile("hello.app", Script("write hello.txt hello grid", "exit 0"))
	sub, err := c.Submit(ctx, NewJobSet("quick").Add("hello", Local("hello.app")).Outputs("hello.txt").Spec())
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := sub.Wait(ctx); status != scheduler.SetCompleted {
		t.Fatalf("status = %s", status)
	}
	out, err := sub.FetchOutput(ctx, "hello", "hello.txt")
	if err != nil || string(out) != "hello grid" {
		t.Fatalf("output %q %v", out, err)
	}
}

func TestJobFailurePropagates(t *testing.T) {
	g := testGrid(t)
	c := testClient(t, g)
	ctx := testCtx(t)
	c.AddFile("bad.app", Script("exit 3"))
	c.AddFile("never.app", Script("exit 0"))
	spec := NewJobSet("doomed").
		Add("bad", Local("bad.app")).Outputs("out").
		Add("never", Local("never.app")).Input("out", Output("bad", "out")).
		Spec()
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	status, err := sub.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != scheduler.SetFailed {
		t.Fatalf("status = %s", status)
	}
	_, detail := sub.Status()
	if !strings.Contains(detail, "bad") {
		t.Errorf("detail = %q", detail)
	}
	// The dependent job never ran: its state is Cancelled.
	rc := wsrf.NewResourceClient(g.Client, sub.JobSet)
	states, err := rc.GetProperty(ctx, scheduler.QJobState)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		name := st.Attr(xmlutil.Q("", "name"))
		got := st.Attr(xmlutil.Q("", "status"))
		want := map[string]string{"bad": scheduler.JobFailed, "never": scheduler.JobCancelled}[name]
		if got != want {
			t.Errorf("job %s status = %s, want %s", name, got, want)
		}
	}
}

func TestMissingInputFailsJob(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo"})
	c := testClient(t, g)
	ctx := testCtx(t)
	spec := NewJobSet("broken").Add("j", Local("ghost.app")).Spec()
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The executable does not exist on the client: staging fails, the
	// FSS reports it, the ES marks the job failed, the set fails.
	if status, _ := sub.Wait(ctx); status != scheduler.SetFailed {
		t.Fatalf("status = %s", status)
	}
}

func TestSubmitValidatesSpec(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo"})
	c := testClient(t, g)
	ctx := testCtx(t)
	// Cycle: a needs b, b needs a.
	spec := &JobSet{Name: "cycle", Jobs: []Job{
		{Name: "a", Executable: Local("x"), Inputs: []FileSpec{{LocalName: "i", Source: Output("b", "o")}}, Outputs: []string{"o"}},
		{Name: "b", Executable: Local("x"), Inputs: []FileSpec{{LocalName: "i", Source: Output("a", "o")}}, Outputs: []string{"o"}},
	}}
	if _, err := c.Submit(ctx, spec); err == nil {
		t.Fatal("cyclic job set accepted")
	}
}

func TestSecurityRejectsWrongPassword(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo"})
	bad, err := g.NewClient(wssec.Credentials{Username: "scientist", Password: "wrong"}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bad.AddFile("x.app", Script("exit 0"))
	_, err = bad.Submit(testCtx(t), NewJobSet("nope").Add("j", Local("x.app")).Spec())
	if err == nil {
		t.Fatal("wrong password accepted")
	}
}

func TestSecurityRequiresCredentials(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo"})
	anon, err := g.NewClient(wssec.Credentials{}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	anon.AddFile("x.app", Script("exit 0"))
	if _, err := anon.Submit(testCtx(t), NewJobSet("anon").Add("j", Local("x.app")).Spec()); err == nil {
		t.Fatal("anonymous submit accepted on secured grid")
	}
}

func TestGreedyPolicyPicksFastestMostAvailable(t *testing.T) {
	busy := func() float64 { return 0.9 }
	g := testGrid(t,
		NodeSpec{Name: "fast-busy", Cores: 1, SpeedMHz: 4000, Background: busy},
		NodeSpec{Name: "fast-idle", Cores: 1, SpeedMHz: 3000},
		NodeSpec{Name: "slow-idle", Cores: 1, SpeedMHz: 800},
	)
	c := testClient(t, g)
	ctx := testCtx(t)
	c.AddFile("j.app", Script("exit 0"))
	sub, err := c.Submit(ctx, NewJobSet("placement").Add("j", Local("j.app")).Spec())
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := sub.Wait(ctx); status != scheduler.SetCompleted {
		t.Fatalf("status = %s", status)
	}
	rc := wsrf.NewResourceClient(g.Client, sub.JobSet)
	states, err := rc.GetProperty(ctx, scheduler.QJobState)
	if err != nil {
		t.Fatal(err)
	}
	// fast-idle scores 3000; fast-busy scores 4000*0.1=400; slow 800.
	if node := states[0].Attr(xmlutil.Q("", "node")); node != "fast-idle" {
		t.Fatalf("scheduled on %q, want fast-idle", node)
	}
}

func TestCancelJobSet(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo"})
	c := testClient(t, g)
	ctx := testCtx(t)
	// A job that would run for a very long time.
	c.AddFile("long.app", Script("compute 100000000", "exit 0"))
	sub, err := c.Submit(ctx, NewJobSet("longset").Add("long", Local("long.app")).Spec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is running, then cancel.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, ok := sub.JobEPR("long"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sub.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	if status, _ := sub.Wait(ctx); status != scheduler.SetCancelled {
		t.Fatalf("status = %s", status)
	}
}

func TestLocalFilesOverRealTCP(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo"})
	c, err := g.NewClient(wssec.Credentials{Username: "scientist", Password: "pw"}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.FilesEPR().Scheme() != "soap.tcp" {
		t.Fatalf("files scheme = %q", c.FilesEPR().Scheme())
	}
	ctx := testCtx(t)
	c.AddFile("t.app", Script("write done.txt ok", "exit 0"))
	sub, err := c.Submit(ctx, NewJobSet("tcp").Add("t", Local("t.app")).Outputs("done.txt").Spec())
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := sub.Wait(ctx); status != scheduler.SetCompleted {
		t.Fatalf("status = %s", status)
	}
	out, err := sub.FetchOutput(ctx, "t", "done.txt")
	if err != nil || string(out) != "ok" {
		t.Fatalf("output %q %v", out, err)
	}
}

func TestParallelFanOutFanIn(t *testing.T) {
	g := testGrid(t)
	c := testClient(t, g)
	ctx := testCtx(t)
	c.AddFile("worker.app", Script("compute 30", `write part.txt 5\n`, "exit 0"))
	b := NewJobSet("fan")
	reducer := Job{Name: "reduce", Executable: Local("reduce.app")}
	reduceScript := []string{}
	for i := 0; i < 6; i++ {
		name := "w" + string(rune('0'+i))
		b.Add(name, Local("worker.app")).Outputs("part.txt")
		local := "part-" + name + ".txt"
		reducer.Inputs = append(reducer.Inputs, FileSpec{LocalName: local, Source: Output(name, "part.txt")})
		reduceScript = append(reduceScript, "append all.txt "+local)
	}
	reduceScript = append(reduceScript, "transform all.txt sum.txt sum", "exit 0")
	c.AddFile("reduce.app", Script(reduceScript...))
	reducer.Outputs = []string{"sum.txt"}
	spec := b.Spec()
	spec.Jobs = append(spec.Jobs, reducer)

	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := sub.Wait(ctx); status != scheduler.SetCompleted {
		_, detail := sub.Status()
		t.Fatalf("status %v (%s)", status, detail)
	}
	out, err := sub.FetchOutput(ctx, "reduce", "sum.txt")
	if err != nil || string(out) != "30" {
		t.Fatalf("fan-in sum = %q %v", out, err)
	}
}

func TestTwoSubmissionsInterleave(t *testing.T) {
	g := testGrid(t)
	c := testClient(t, g)
	ctx := testCtx(t)
	c.AddFile("a.app", Script("compute 20", "write a.txt A", "exit 0"))
	c.AddFile("b.app", Script("compute 20", "write b.txt B", "exit 0"))
	subA, err := c.Submit(ctx, NewJobSet("setA").Add("a", Local("a.app")).Outputs("a.txt").Spec())
	if err != nil {
		t.Fatal(err)
	}
	subB, err := c.Submit(ctx, NewJobSet("setB").Add("b", Local("b.app")).Outputs("b.txt").Spec())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := subA.Wait(ctx); s != scheduler.SetCompleted {
		t.Fatalf("setA = %s", s)
	}
	if s, _ := subB.Wait(ctx); s != scheduler.SetCompleted {
		t.Fatalf("setB = %s", s)
	}
	outA, _ := subA.FetchOutput(ctx, "a", "a.txt")
	outB, _ := subB.FetchOutput(ctx, "b", "b.txt")
	if string(outA) != "A" || string(outB) != "B" {
		t.Fatalf("cross-talk: %q %q", outA, outB)
	}
}

func TestJobResourcePropertiesDuringRun(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo"})
	c := testClient(t, g)
	ctx := testCtx(t)
	c.AddFile("slow.app", Script("compute 100000000", "exit 0"))
	sub, err := c.Submit(ctx, NewJobSet("watch").Add("slow", Local("slow.app")).Spec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if epr, ok := sub.JobEPR("slow"); ok {
			// Poll the job resource like the paper's client: status and
			// CPU time are resource properties.
			rc := wsrf.NewResourceClient(g.Client, epr)
			status, err := rc.GetPropertyText(ctx, xmlutil.Q("urn:uvacg:es", "Status"))
			if err != nil {
				t.Fatal(err)
			}
			if status != "Running" && status != "Staging" {
				t.Fatalf("status = %q", status)
			}
			if _, err := rc.GetPropertyText(ctx, xmlutil.Q("urn:uvacg:es", "CPUTime")); err != nil {
				t.Fatal(err)
			}
			if err := sub.KillJob(ctx, "slow"); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never surfaced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A killed job exits nonzero → set fails.
	if status, _ := sub.Wait(ctx); status != scheduler.SetFailed {
		t.Fatalf("status after kill = %s", status)
	}
}

// Keep wsn referenced for the event-channel API assertions above.
var _ = wsn.DialectSimple

func TestVanishedNodeFailsJobSet(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "flaky"}, NodeSpec{Name: "absent", SpeedMHz: 9000})
	c := testClient(t, g)
	ctx := testCtx(t)
	// The fastest machine drops off the network after registering with
	// the NIS: its catalog entry is now a dangling EPR.
	absent, _ := g.Node("absent")
	absent.Stop()

	c.AddFile("j.app", Script("exit 0"))
	sub, err := c.Submit(ctx, NewJobSet("dangling").Add("j", Local("j.app")).Spec())
	if err != nil {
		t.Fatal(err)
	}
	// The greedy policy picks the (dead) fastest machine, the Run call
	// fails, and the scheduler fails the set rather than hanging.
	status, err := sub.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != scheduler.SetFailed {
		t.Fatalf("status = %s", status)
	}
	_, detail := sub.Status()
	if !strings.Contains(detail, "dispatch") {
		t.Errorf("detail = %q", detail)
	}
}

func TestFetchOutputFallsBackToJobSetResource(t *testing.T) {
	g := testGrid(t, NodeSpec{Name: "solo"})
	c := testClient(t, g)
	ctx := testCtx(t)
	c.AddFile("j.app", Script("write out.txt data", "exit 0"))
	sub, err := c.Submit(ctx, NewJobSet("fb").Add("j", Local("j.app")).Outputs("out.txt").Spec())
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := sub.Wait(ctx); status != scheduler.SetCompleted {
		t.Fatalf("status = %s", status)
	}
	// Simulate the client having missed the directory event entirely:
	// the fallback reads the Scheduler's persisted record.
	sub.mu.Lock()
	sub.dirs = map[string]wsa.EndpointReference{}
	sub.mu.Unlock()
	out, err := sub.FetchOutput(ctx, "j", "out.txt")
	if err != nil || string(out) != "data" {
		t.Fatalf("fallback fetch: %q %v", out, err)
	}
	// And it caches the recovered directory.
	if _, ok := sub.OutputDirectory("j"); !ok {
		t.Fatal("recovered directory not cached")
	}
}
