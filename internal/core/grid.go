// Package core is the public face of the library: it assembles a whole
// campus grid (simulated machines plus the master services — Scheduler,
// Node Info and Notification Broker) and provides the client through
// which a scientist submits job sets, watches their progress via
// WS-Notification, and retrieves outputs. It is the programmatic
// equivalent of the paper's GUI tool plus testbed deployment (Fig. 3).
package core

import (
	"context"
	"fmt"
	"time"

	"uvacg/internal/admission"
	"uvacg/internal/node"
	"uvacg/internal/pipeline"
	"uvacg/internal/resourcedb"
	"uvacg/internal/services/filesystem"
	"uvacg/internal/services/nodeinfo"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/wsa"
	"uvacg/internal/wsn"
	"uvacg/internal/wsrf"
	"uvacg/internal/wssec"
)

// IdempotentActions is the grid's safe-to-retry predicate: the pure
// reads of the WSRF property port types, the NIS processor query and
// the FSS file reads. Mutating operations — Submit, Run, uploads,
// lifetime changes — are excluded; they must reach a service at most
// once.
func IdempotentActions() func(string) bool {
	return pipeline.IdempotentActions(
		wsrf.ActionGetResourceProperty,
		wsrf.ActionGetResourcePropertyDocument,
		wsrf.ActionGetMultipleResourceProperties,
		wsrf.ActionQueryResourceProperties,
		nodeinfo.ActionGetProcessors,
		wsn.ActionGetCurrentMessage,
		filesystem.ActionRead,
		filesystem.ActionList,
		filesystem.ActionReadBlob,
	)
}

// NodeSpec describes one simulated machine.
type NodeSpec struct {
	Name     string
	Cores    int
	SpeedMHz float64
	RAMMB    int
	// Background supplies non-grid load (0..1); nil means idle.
	Background func() float64
}

// GridConfig assembles a grid.
type GridConfig struct {
	// Nodes are the machines; at least one is required.
	Nodes []NodeSpec
	// Accounts, when set, turns on WS-Security end to end: clients must
	// submit with valid credentials, the Scheduler forwards them
	// encrypted to each ES, and ProcSpawn runs jobs as that account.
	Accounts wssec.StaticAccounts
	// Policy picks execution nodes; defaults to the paper's greedy
	// "fastest, most available" policy.
	Policy scheduler.Policy
	// UnitTime scales simulated compute (default 50µs per unit at
	// 1000 MHz).
	UnitTime time.Duration
	// UtilizationThreshold is each machine's report trigger delta.
	UtilizationThreshold float64
	// JobTimeout, when positive, fails any dispatched job with no
	// terminal event inside the window (a crashed or partitioned
	// machine) instead of letting the job set hang.
	JobTimeout time.Duration
	// MasterHost names the master machine (default "master").
	MasterHost string
	// Metrics, when set, records every outbound call the grid makes
	// (per wire attempt, retries included), keyed by service path and
	// action.
	Metrics *pipeline.Metrics
	// Retry, when set, retries idempotent actions on transient
	// transport failures. A nil Idempotent predicate defaults to
	// IdempotentActions().
	Retry *pipeline.RetryPolicy
	// MaxInflightDispatch bounds the scheduler's concurrent job
	// dispatches (0 = scheduler default, 1 = strictly serial).
	MaxInflightDispatch int
	// DefaultRetry applies to every job whose spec carries no retry
	// policy of its own (the gridmaster -retry-default flag).
	DefaultRetry scheduler.RetryPolicy
	// Admission, when set, parks submits in this queue and lets the
	// fair-share pump activate them (the gridmaster -queue-depth flags).
	Admission *admission.Queue
	// Preempt lets an interactive-class arrival that finds its tenant's
	// running quota full evict the tenant's youngest running
	// scavenger-class set (requires Admission; the -preempt flag).
	Preempt bool
	// CatalogTTL tunes the scheduler's processor-catalog cache
	// (0 = scheduler default, negative = poll the NIS per dispatch).
	CatalogTTL time.Duration
	// WireDelay, when positive, delays every outbound message by this
	// much — a crude stand-in for a real campus network, used by the
	// dispatch-throughput benchmarks to make RPC latency visible.
	WireDelay time.Duration
	// Replicas, when positive, runs the replication layer on the
	// master: staged inputs are fanned out to this many FSS nodes and
	// the acked holder sets journaled.
	Replicas int
	// OnStage, when set, observes every file staged by any node's FSS
	// (route taken, bytes moved) — the placement benchmarks' counters.
	OnStage func(rec filesystem.StageRecord)
}

// Grid is a running campus grid.
type Grid struct {
	Network    *transport.Network
	Client     *transport.Client
	Master     *transport.Server
	Nodes      []*node.Node
	Broker     *wsn.Broker
	NIS        *nodeinfo.Service
	Scheduler  *scheduler.Service
	Replicator *filesystem.Replicator

	cfg        GridConfig
	ssIdentity *wssec.Identity
	clientSeq  int
	stopPump   context.CancelFunc
}

// NewGrid builds and starts a grid.
func NewGrid(cfg GridConfig) (*Grid, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("core: grid needs at least one node")
	}
	if cfg.MasterHost == "" {
		cfg.MasterHost = "master"
	}
	network := transport.NewNetwork()
	client := transport.NewClient().WithNetwork(network)
	masterAddr := "inproc://" + cfg.MasterHost

	// The invocation pipeline: request correlation and deadline
	// propagation always on; retry and metrics by configuration.
	// Installation order is nesting order (earlier = outermost), so the
	// metrics interceptor sits innermost and records every wire attempt
	// a retry makes.
	client.Use(pipeline.ClientRequestID(), pipeline.ClientDeadline())
	if cfg.Retry != nil {
		p := *cfg.Retry
		if p.Idempotent == nil {
			p.Idempotent = IdempotentActions()
		}
		client.Use(pipeline.Retry(p))
	}
	if cfg.Metrics != nil {
		client.Use(cfg.Metrics.Interceptor())
	}
	if cfg.WireDelay > 0 {
		delay := cfg.WireDelay
		client.WrapSchemes(func(scheme string, rt transport.RoundTripper) transport.RoundTripper {
			return transport.WrapFaults(rt, func(transport.FaultOp, string) transport.FaultDecision {
				return transport.FaultDecision{Delay: delay}
			})
		})
	}

	g := &Grid{Network: network, Client: client, cfg: cfg}

	masterStore := resourcedb.NewStore()
	broker, err := wsn.NewBroker("/NotificationBroker", masterAddr,
		wsrf.NewStateHome(masterStore.MustTable("subscriptions", resourcedb.BlobCodec{})), client)
	if err != nil {
		return nil, err
	}
	g.Broker = broker
	if cfg.Retry != nil {
		// Notification delivery gets the same bounded backoff: a slow
		// consumer's transient failure is absorbed instead of counting
		// toward its subscription's destruction. SetDeliveryRetry gates
		// on the Notify action itself, so the configured predicate (which
		// excludes one-way sends) is not carried over.
		p := *cfg.Retry
		p.Idempotent = nil
		broker.Producer().SetDeliveryRetry(p)
	}

	nis, err := nodeinfo.New(nodeinfo.Config{
		Address: masterAddr,
		Home:    wsrf.NewStateHome(masterStore.MustTable("nodeinfo", resourcedb.BlobCodec{})),
		Client:  client,
		Broker:  broker.EPR(),
	})
	if err != nil {
		return nil, err
	}
	g.NIS = nis

	ssCfg := scheduler.Config{
		Address:    masterAddr,
		Home:       wsrf.NewStateHome(masterStore.MustTable("jobsets", resourcedb.BlobCodec{})),
		Client:     client,
		NIS:        nis.EPR(),
		Broker:     broker.EPR(),
		Policy:     cfg.Policy,
		ESCerts:    g.certFor,
		JobTimeout: cfg.JobTimeout,

		MaxInflightDispatch: cfg.MaxInflightDispatch,
		CatalogTTL:          cfg.CatalogTTL,
		DefaultRetry:        cfg.DefaultRetry,
	}
	if cfg.Admission != nil {
		ssCfg.Admission = cfg.Admission
		ssCfg.Preempt = cfg.Preempt
	} else if cfg.Preempt {
		return nil, fmt.Errorf("core: Preempt needs an Admission queue")
	}
	if cfg.Accounts != nil {
		g.ssIdentity, err = wssec.NewIdentity("CN=SchedulerService/" + cfg.MasterHost)
		if err != nil {
			return nil, err
		}
		ssCfg.Security = &wssec.VerifierConfig{
			Identity: g.ssIdentity,
			Accounts: cfg.Accounts,
			Required: true,
		}
	}
	ss, err := scheduler.New(ssCfg)
	if err != nil {
		return nil, err
	}
	g.Scheduler = ss

	masterMux := soap.NewMux()
	masterMux.Handle(broker.Service().Path(), broker.Service().Dispatcher())
	masterMux.Handle(broker.Producer().SubscriptionService().Path(), broker.Producer().SubscriptionService().Dispatcher())
	masterMux.Handle(nis.WSRF().Path(), nis.WSRF().Dispatcher())
	masterMux.Handle(ss.WSRF().Path(), ss.WSRF().Dispatcher())
	ss.Consumer().Mount(masterMux, ss.ConsumerPath())
	if cfg.Replicas > 0 {
		g.Replicator = filesystem.NewReplicator(filesystem.ReplicatorConfig{
			Address:  masterAddr,
			Client:   client,
			Broker:   broker.EPR(),
			NIS:      nis.EPR(),
			Replicas: cfg.Replicas,
			Journal:  masterStore.MustTable("replicas", resourcedb.BlobCodec{}),
			Metrics:  cfg.Metrics,
		})
		g.Replicator.Consumer().Mount(masterMux, g.Replicator.ConsumerPath())
	}
	g.Master = transport.NewServer(masterMux)
	g.Master.Use(serverInterceptors()...)
	network.Register(cfg.MasterHost, g.Master)
	if g.Replicator != nil {
		rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := g.Replicator.Start(rctx); err != nil {
			rcancel()
			return nil, fmt.Errorf("core: replicator subscription: %w", err)
		}
		rcancel()
	}

	for _, spec := range cfg.Nodes {
		n, err := node.New(node.Config{
			Interceptors:         serverInterceptors(),
			Name:                 spec.Name,
			Network:              network,
			Client:               client,
			Cores:                spec.Cores,
			SpeedMHz:             spec.SpeedMHz,
			RAMMB:                spec.RAMMB,
			UnitTime:             cfg.UnitTime,
			Accounts:             cfg.Accounts,
			Broker:               broker.EPR(),
			NIS:                  nis.EPR(),
			UtilizationThreshold: cfg.UtilizationThreshold,
			Background:           spec.Background,
			OnStage:              cfg.OnStage,
			ReplicaEvents:        cfg.Replicas > 0,
		})
		if err != nil {
			return nil, fmt.Errorf("core: node %s: %w", spec.Name, err)
		}
		g.Nodes = append(g.Nodes, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, n := range g.Nodes {
		if err := n.Register(ctx); err != nil {
			return nil, fmt.Errorf("core: register %s with NIS: %w", n.Name, err)
		}
	}
	// Resume any job sets a previous scheduler instance left running
	// (no-op for fresh stores).
	if _, err := ss.Recover(ctx); err != nil {
		return nil, fmt.Errorf("core: scheduler recovery: %w", err)
	}
	if cfg.Admission != nil {
		pumpCtx, stopPump := context.WithCancel(context.Background())
		g.stopPump = stopPump
		ss.StartAdmission(pumpCtx)
	}
	return g, nil
}

// serverInterceptors is the receive pipeline every grid host runs:
// lift the propagated request ID onto the handler context and
// re-establish the caller's deadline.
func serverInterceptors() []soap.Interceptor {
	return []soap.Interceptor{pipeline.ServerRequestID(), pipeline.ServerDeadline()}
}

// certFor resolves the ES certificate for credential encryption.
func (g *Grid) certFor(es wsa.EndpointReference) (wssec.Certificate, bool) {
	for _, n := range g.Nodes {
		if n.ES.EPR().Address == es.Address {
			return n.Certificate(), true
		}
	}
	return wssec.Certificate{}, false
}

// SchedulerCertificate returns the SS certificate clients encrypt their
// Submit credentials to; zero when security is off.
func (g *Grid) SchedulerCertificate() (wssec.Certificate, bool) {
	if g.ssIdentity == nil {
		return wssec.Certificate{}, false
	}
	return g.ssIdentity.Certificate(), true
}

// Node finds a machine by name.
func (g *Grid) Node(name string) (*node.Node, bool) {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return nil, false
}

// StartMonitors launches every machine's background utilization
// monitor.
func (g *Grid) StartMonitors() {
	for _, n := range g.Nodes {
		n.Start()
	}
}

// Close stops the grid's background activity.
func (g *Grid) Close() {
	if g.stopPump != nil {
		g.stopPump()
	}
	for _, n := range g.Nodes {
		n.Stop()
	}
}
