package core

import (
	"uvacg/internal/procspawn"
	"uvacg/internal/services/scheduler"
)

// JobSet re-exports the scheduler's job-set description so library users
// build job sets without importing service internals.
type JobSet = scheduler.JobSetSpec

// Job is one job in a set.
type Job = scheduler.JobSpec

// FileSpec names one input file.
type FileSpec = scheduler.FileSpec

// Local builds a source URI for a file on the client's machine, served
// through its file server ("local://c:\file1" in the paper).
func Local(name string) string { return scheduler.SourceLocal + "://" + name }

// Output builds a source URI for another job's output ("job1://output2"
// in the paper: job1 will produce output2, retrieve it from wherever
// job1 ends up executing).
func Output(job, file string) string { return job + "://" + file }

// Script assembles job-script executable content (see
// procspawn.ParseScript for the instruction set).
func Script(instructions ...string) []byte {
	return procspawn.BuildScript(instructions...)
}

// NewJobSet starts a job set description.
func NewJobSet(name string) *JobSetBuilder {
	return &JobSetBuilder{spec: &JobSet{Name: name}}
}

// JobSetBuilder is a fluent builder for job sets.
type JobSetBuilder struct {
	spec *JobSet
}

// Add appends a job and returns its builder.
func (b *JobSetBuilder) Add(name, executable string) *JobBuilder {
	b.spec.Jobs = append(b.spec.Jobs, Job{Name: name, Executable: executable})
	return &JobBuilder{set: b, job: &b.spec.Jobs[len(b.spec.Jobs)-1]}
}

// Spec returns the built description (validated at submit time).
func (b *JobSetBuilder) Spec() *JobSet { return b.spec }

// JobBuilder configures one job.
type JobBuilder struct {
	set *JobSetBuilder
	job *Job
}

// Input declares an input file: the name the job expects and its
// source URI.
func (jb *JobBuilder) Input(localName, source string) *JobBuilder {
	jb.job.Inputs = append(jb.job.Inputs, FileSpec{LocalName: localName, Source: source})
	return jb
}

// Outputs declares the files this job produces for downstream jobs.
func (jb *JobBuilder) Outputs(names ...string) *JobBuilder {
	jb.job.Outputs = append(jb.job.Outputs, names...)
	return jb
}

// Add starts the next job (chaining back through the set builder).
func (jb *JobBuilder) Add(name, executable string) *JobBuilder {
	return jb.set.Add(name, executable)
}

// Spec finishes the description.
func (jb *JobBuilder) Spec() *JobSet { return jb.set.Spec() }
