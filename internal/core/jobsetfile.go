package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// JobSetFile is a parsed job-set description file: the text equivalent
// of the paper's GUI assembly step. Format, one directive per line:
//
//	jobset <name>
//	file <name> <path>          publish a client file (path on disk)
//	job <name>
//	  exec <source-uri>         e.g. local://gen.app or build://tool
//	  input <local-name> <source-uri>
//	  output <file> [...]
//	fetch <job> <file>          retrieve after completion
//
// '#' starts a comment; indentation is cosmetic.
type JobSetFile struct {
	Spec *JobSet
	// Files maps published-file names to their on-disk paths.
	Files map[string]string
	// Fetches lists outputs to retrieve when the set completes.
	Fetches []Fetch
}

// Fetch names one output file to retrieve.
type Fetch struct {
	Job  string
	File string
}

// ParseJobSetFile parses the description format.
func ParseJobSetFile(r io.Reader) (*JobSetFile, error) {
	out := &JobSetFile{Spec: &JobSet{}, Files: make(map[string]string)}
	var current *Job
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("jobset file line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "jobset":
			if len(fields) != 2 {
				return nil, fail("jobset takes a name")
			}
			out.Spec.Name = fields[1]
		case "file":
			if len(fields) != 3 {
				return nil, fail("file takes a name and a path")
			}
			if _, dup := out.Files[fields[1]]; dup {
				return nil, fail("duplicate file %q", fields[1])
			}
			out.Files[fields[1]] = fields[2]
		case "job":
			if len(fields) != 2 {
				return nil, fail("job takes a name")
			}
			out.Spec.Jobs = append(out.Spec.Jobs, Job{Name: fields[1]})
			current = &out.Spec.Jobs[len(out.Spec.Jobs)-1]
		case "exec":
			if current == nil {
				return nil, fail("exec outside a job")
			}
			if len(fields) != 2 {
				return nil, fail("exec takes a source URI")
			}
			current.Executable = fields[1]
		case "input":
			if current == nil {
				return nil, fail("input outside a job")
			}
			if len(fields) != 3 {
				return nil, fail("input takes a local name and a source URI")
			}
			current.Inputs = append(current.Inputs, FileSpec{LocalName: fields[1], Source: fields[2]})
		case "output":
			if current == nil {
				return nil, fail("output outside a job")
			}
			if len(fields) < 2 {
				return nil, fail("output takes at least one file name")
			}
			current.Outputs = append(current.Outputs, fields[1:]...)
		case "fetch":
			if len(fields) != 3 {
				return nil, fail("fetch takes a job and a file")
			}
			out.Fetches = append(out.Fetches, Fetch{Job: fields[1], File: fields[2]})
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if out.Spec.Name == "" {
		return nil, fmt.Errorf("jobset file: missing 'jobset <name>' directive")
	}
	if err := out.Spec.Validate(); err != nil {
		return nil, err
	}
	for _, f := range out.Fetches {
		found := false
		for _, j := range out.Spec.Jobs {
			if j.Name == f.Job {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("jobset file: fetch references unknown job %q", f.Job)
		}
	}
	return out, nil
}
