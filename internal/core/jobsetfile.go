package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"uvacg/internal/services/scheduler"
)

// JobSetFile is a parsed job-set description file: the text equivalent
// of the paper's GUI assembly step. Format, one directive per line:
//
//	jobset <name>
//	file <name> <path>          publish a client file (path on disk)
//	job <name>
//	  exec <source-uri>         e.g. local://gen.app or build://tool
//	  input <local-name> <source-uri>
//	  output <file> [...]
//	  after <job> [...]         run only once these jobs are terminal
//	  on <success|failure|always>  gate on how the after-jobs ended
//	  retry <limit> [backoff]   re-run on failure, e.g. retry 2 500ms
//	fetch <job> <file>          retrieve after completion
//
// '#' starts a comment; indentation is cosmetic.
type JobSetFile struct {
	Spec *JobSet
	// Files maps published-file names to their on-disk paths.
	Files map[string]string
	// Fetches lists outputs to retrieve when the set completes.
	Fetches []Fetch
}

// Fetch names one output file to retrieve.
type Fetch struct {
	Job  string
	File string
}

// ParseJobSetFile parses the description format.
func ParseJobSetFile(r io.Reader) (*JobSetFile, error) {
	out := &JobSetFile{Spec: &JobSet{}, Files: make(map[string]string)}
	var current *Job
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("jobset file line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "jobset":
			if len(fields) != 2 {
				return nil, fail("jobset takes a name")
			}
			out.Spec.Name = fields[1]
		case "file":
			if len(fields) != 3 {
				return nil, fail("file takes a name and a path")
			}
			if _, dup := out.Files[fields[1]]; dup {
				return nil, fail("duplicate file %q", fields[1])
			}
			out.Files[fields[1]] = fields[2]
		case "job":
			if len(fields) != 2 {
				return nil, fail("job takes a name")
			}
			out.Spec.Jobs = append(out.Spec.Jobs, Job{Name: fields[1]})
			current = &out.Spec.Jobs[len(out.Spec.Jobs)-1]
		case "exec":
			if current == nil {
				return nil, fail("exec outside a job")
			}
			if len(fields) != 2 {
				return nil, fail("exec takes a source URI")
			}
			current.Executable = fields[1]
		case "input":
			if current == nil {
				return nil, fail("input outside a job")
			}
			if len(fields) != 3 {
				return nil, fail("input takes a local name and a source URI")
			}
			current.Inputs = append(current.Inputs, FileSpec{LocalName: fields[1], Source: fields[2]})
		case "output":
			if current == nil {
				return nil, fail("output outside a job")
			}
			if len(fields) < 2 {
				return nil, fail("output takes at least one file name")
			}
			current.Outputs = append(current.Outputs, fields[1:]...)
		case "after":
			if current == nil {
				return nil, fail("after outside a job")
			}
			if len(fields) < 2 {
				return nil, fail("after takes at least one job name")
			}
			current.After = append(current.After, fields[1:]...)
		case "on":
			if current == nil {
				return nil, fail("on outside a job")
			}
			if len(fields) != 2 {
				return nil, fail("on takes success, failure or always")
			}
			current.RunOn = fields[1]
		case "retry":
			if current == nil {
				return nil, fail("retry outside a job")
			}
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fail("retry takes a limit and an optional backoff")
			}
			limit, err := strconv.Atoi(fields[1])
			if err != nil || limit < 1 {
				return nil, fail("retry limit %q must be a positive integer", fields[1])
			}
			backoff := time.Second
			if len(fields) == 3 {
				backoff, err = time.ParseDuration(fields[2])
				if err != nil || backoff < 0 {
					return nil, fail("retry backoff %q must be a duration like 500ms", fields[2])
				}
			}
			current.Retry = scheduler.RetryPolicy{Limit: limit, Backoff: backoff}
		case "fetch":
			if len(fields) != 3 {
				return nil, fail("fetch takes a job and a file")
			}
			out.Fetches = append(out.Fetches, Fetch{Job: fields[1], File: fields[2]})
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if out.Spec.Name == "" {
		return nil, fmt.Errorf("jobset file: missing 'jobset <name>' directive")
	}
	if err := out.Spec.Validate(); err != nil {
		return nil, err
	}
	for _, f := range out.Fetches {
		found := false
		for _, j := range out.Spec.Jobs {
			if j.Name == f.Job {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("jobset file: fetch references unknown job %q", f.Job)
		}
	}
	return out, nil
}
