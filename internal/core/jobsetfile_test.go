package core

import (
	"strings"
	"testing"
	"time"

	"uvacg/internal/services/scheduler"
)

const sampleJobSetFile = `
# analysis pipeline
jobset analysis
file gen.app ./scripts/gen.app
file sum.app ./scripts/sum.app

job gen
  exec local://gen.app
  output data.txt

job sum
  exec local://sum.app
  input data.txt gen://data.txt
  output total.txt stats.txt
  after gen
  retry 2 500ms

job tidy
  exec local://sum.app
  after gen sum
  on failure

fetch sum total.txt
`

func TestParseJobSetFile(t *testing.T) {
	f, err := ParseJobSetFile(strings.NewReader(sampleJobSetFile))
	if err != nil {
		t.Fatal(err)
	}
	if f.Spec.Name != "analysis" || len(f.Spec.Jobs) != 3 {
		t.Fatalf("spec = %+v", f.Spec)
	}
	if f.Files["gen.app"] != "./scripts/gen.app" {
		t.Errorf("files = %v", f.Files)
	}
	sum := f.Spec.Jobs[1]
	if sum.Executable != "local://sum.app" {
		t.Errorf("exec = %q", sum.Executable)
	}
	if len(sum.Inputs) != 1 || sum.Inputs[0].Source != "gen://data.txt" {
		t.Errorf("inputs = %v", sum.Inputs)
	}
	if len(sum.Outputs) != 2 {
		t.Errorf("outputs = %v", sum.Outputs)
	}
	if len(sum.After) != 1 || sum.After[0] != "gen" {
		t.Errorf("after = %v", sum.After)
	}
	if sum.Retry != (scheduler.RetryPolicy{Limit: 2, Backoff: 500 * time.Millisecond}) {
		t.Errorf("retry = %+v", sum.Retry)
	}
	tidy := f.Spec.Jobs[2]
	if tidy.RunOn != scheduler.RunOnFailure || len(tidy.After) != 2 {
		t.Errorf("tidy = %+v", tidy)
	}
	if len(f.Fetches) != 1 || f.Fetches[0] != (Fetch{Job: "sum", File: "total.txt"}) {
		t.Errorf("fetches = %v", f.Fetches)
	}
}

func TestParseJobSetFileErrors(t *testing.T) {
	cases := map[string]string{
		"no name":          "job a\n exec local://x\n",
		"exec outside job": "jobset s\nexec local://x\njob a\n exec local://x\n",
		"bad directive":    "jobset s\nfrobnicate\n",
		"bad fetch":        "jobset s\njob a\n exec local://x\nfetch ghost out\n",
		"duplicate file":   "jobset s\nfile a p1\nfile a p2\njob a\n exec local://a\n",
		"invalid spec":     "jobset s\njob a\n exec local://x\njob a\n exec local://x\n",
		"input arity":      "jobset s\njob a\n exec local://x\n input only-one\n",
		"after no jobs":    "jobset s\njob a\n exec local://x\n after\n",
		"bad on value":     "jobset s\njob a\n exec local://x\njob b\n exec local://x\n after a\n on sometimes\n",
		"on without after": "jobset s\njob a\n exec local://x\n on failure\n",
		"bad retry limit":  "jobset s\njob a\n exec local://x\n retry zero\n",
		"bad retry delay":  "jobset s\njob a\n exec local://x\n retry 2 fast\n",
		"retry outside":    "jobset s\nretry 2\njob a\n exec local://x\n",
	}
	for name, src := range cases {
		if _, err := ParseJobSetFile(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
