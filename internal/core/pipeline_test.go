package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"uvacg/internal/pipeline"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/soap"
)

// hopRecorder is a server-side interceptor noting which request IDs
// arrive at which service paths. Installed after the grid's own
// ServerRequestID interceptor, it sees the ID already lifted onto the
// context.
type hopRecorder struct {
	mu  sync.Mutex
	ids map[string]map[string]bool // path → set of request IDs
}

func newHopRecorder() *hopRecorder {
	return &hopRecorder{ids: make(map[string]map[string]bool)}
}

func (r *hopRecorder) interceptor() soap.Interceptor {
	return func(ctx context.Context, call *soap.CallInfo, next soap.Handler) (*soap.Envelope, error) {
		id, _ := pipeline.RequestIDFrom(ctx)
		r.mu.Lock()
		if r.ids[call.Path] == nil {
			r.ids[call.Path] = make(map[string]bool)
		}
		r.ids[call.Path][id] = true
		r.mu.Unlock()
		return next(ctx, call)
	}
}

func (r *hopRecorder) idsAt(path string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id := range r.ids[path] {
		out = append(out, id)
	}
	return out
}

// wireCounter independently counts wire calls at the innermost client
// position — the ground truth the metrics interceptor must match.
type wireCounter struct {
	mu     sync.Mutex
	counts map[pipeline.Key]uint64
}

func newWireCounter() *wireCounter {
	return &wireCounter{counts: make(map[pipeline.Key]uint64)}
}

func (w *wireCounter) interceptor() soap.Interceptor {
	return func(ctx context.Context, call *soap.CallInfo, next soap.Handler) (*soap.Envelope, error) {
		w.mu.Lock()
		w.counts[pipeline.Key{Path: call.Path, Action: call.Action}]++
		w.mu.Unlock()
		return next(ctx, call)
	}
}

func (w *wireCounter) snapshot() map[pipeline.Key]uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[pipeline.Key]uint64, len(w.counts))
	for k, v := range w.counts {
		out[k] = v
	}
	return out
}

// TestF3_RequestIDAndMetrics runs the paper's job-set flow with the
// request-ID and metrics interceptors engaged and asserts (a) the whole
// multi-service flow — Scheduler, ES, FSS, broker — executed under the
// single request ID chosen at submission, and (b) the per-action
// metrics agree exactly with the wire calls actually made.
func TestF3_RequestIDAndMetrics(t *testing.T) {
	metrics := pipeline.NewMetrics()
	g, err := NewGrid(GridConfig{
		Nodes: []NodeSpec{
			{Name: "win-a", Cores: 2, SpeedMHz: 2800, RAMMB: 1024},
			{Name: "win-b", Cores: 1, SpeedMHz: 1400, RAMMB: 512},
		},
		Accounts: testAccounts,
		UnitTime: 5 * time.Microsecond,
		Metrics:  metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)

	// Recorders go in after NewGrid: grid bootstrap traffic (NIS
	// registration) is not part of the flow under test. The metrics
	// baseline is snapshotted for the same reason.
	rec := newHopRecorder()
	g.Master.Use(rec.interceptor())
	for _, n := range g.Nodes {
		n.Server().Use(rec.interceptor())
	}
	wc := newWireCounter()
	g.Client.Use(wc.interceptor())
	baseline := metrics.Snapshot()

	c := testClient(t, g)
	c.AddFile("gen.app", Script(
		"compute 20",
		"write data.txt 4 5 6",
		"exit 0",
	))
	c.AddFile("sum.app", Script(
		"read data.txt",
		"transform data.txt total.txt sum",
		"exit 0",
	))
	spec := NewJobSet("traced").
		Add("gen", Local("gen.app")).Outputs("data.txt").
		Add("sum", Local("sum.app")).Input("data.txt", Output("gen", "data.txt")).Outputs("total.txt").
		Spec()

	const flowID = "urn:uuid:f3-traced-flow"
	ctx := pipeline.WithRequestID(testCtx(t), flowID)
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	status, err := sub.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != scheduler.SetCompleted {
		_, detail := sub.Status()
		t.Fatalf("status = %s (%s)", status, detail)
	}

	// (a) Every hop of the flow — including the second job, dispatched
	// from a notification, and the exit events published after the Run
	// exchange ended — carried the one ID chosen at submission. The
	// broker is the exception: besides the flow's events it carries the
	// NIS's background catalog-changed publishes, which inherit the
	// utilization reports' own correlation IDs, so there the flow ID
	// must be present rather than exclusive.
	hopPaths := []string{
		"/SchedulerService",
		"/ExecutionService",
		"/FileSystemService",
		"/NotificationBroker",
	}
	contains := func(ids []string, want string) bool {
		for _, id := range ids {
			if id == want {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, path := range hopPaths {
		for {
			ids := rec.idsAt(path)
			if path == "/NotificationBroker" {
				if contains(ids, flowID) {
					break
				}
			} else if len(ids) == 1 && ids[0] == flowID {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("hop %s observed request IDs %v, want %s", path, ids, flowID)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// (b) Per-action metrics match the wire calls made, counted
	// independently at the innermost chain position. One-way dispatch
	// is asynchronous, so settle with a deadline.
	for {
		want := wc.snapshot()
		got := metrics.Snapshot()
		if match := metricsMatch(t, baseline, got, want, time.Now().After(deadline)); match {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Sanity on absolute counts: exactly one Submit crossed the wire.
	snap := metrics.Snapshot()
	submitKey := pipeline.Key{Path: "/SchedulerService", Action: scheduler.ActionSubmit}
	if n := snap[submitKey].Calls - baseline[submitKey].Calls; n != 1 {
		t.Fatalf("Submit recorded %d times, want 1", n)
	}
}

// metricsMatch compares the metrics delta since baseline with the wire
// counter. When final is true, mismatches are fatal; otherwise it just
// reports whether they agree yet.
func metricsMatch(t *testing.T, baseline, got map[pipeline.Key]pipeline.Stats, want map[pipeline.Key]uint64, final bool) bool {
	t.Helper()
	for k, n := range want {
		delta := got[k].Calls - baseline[k].Calls
		if delta != n {
			if final {
				t.Fatalf("metrics for %v: %d calls, wire counter saw %d", k, delta, n)
			}
			return false
		}
	}
	for k, s := range got {
		delta := s.Calls - baseline[k].Calls
		if delta > 0 && want[k] != delta {
			if final {
				t.Fatalf("metrics recorded %d calls for %v, wire counter saw %d", delta, k, want[k])
			}
			return false
		}
	}
	return true
}
