package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"uvacg/internal/services/execution"
	"uvacg/internal/services/filesystem"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/wsa"
	"uvacg/internal/wsn"
	"uvacg/internal/wsrf"
	"uvacg/internal/wssec"
	"uvacg/internal/xmlutil"
)

// Client plays the scientist's GUI tool (paper §4.6): it serves local
// input files to the grid, runs a light-weight notification receiver,
// submits job sets to the Scheduler, and retrieves outputs from
// wherever jobs ended up executing.
type Client struct {
	grid  *Grid
	host  string
	creds wssec.Credentials

	files    *filesystem.FileServer
	consumer *wsn.Consumer
	filesEPR wsa.EndpointReference

	mu          sync.Mutex
	submissions map[string]*Submission // topic → submission
	pending     []wsn.Notification     // events that raced ahead of Submit's reply
}

// NewClient attaches a client to the grid. creds must name an account
// from the grid's account table when security is on. useTCP serves
// local files over a real soap.tcp listener (the paper's WSE TCP server
// thread); otherwise they ride the inproc fabric.
func (g *Grid) NewClient(creds wssec.Credentials, useTCP bool) (*Client, error) {
	g.clientSeq++
	host := fmt.Sprintf("client-%d", g.clientSeq)
	c := &Client{
		grid:        g,
		host:        host,
		creds:       creds,
		files:       filesystem.NewFileServer("/files"),
		consumer:    wsn.NewConsumer(),
		submissions: make(map[string]*Submission),
	}
	c.consumer.Handle(wsn.MustTopicExpression(wsn.DialectFull, "*//"), c.route)

	mux := soap.NewMux()
	c.consumer.Mount(mux, "/listener")
	if useTCP {
		epr, err := c.files.ListenTCP("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		c.filesEPR = epr
	} else {
		c.files.Mount(mux)
		c.filesEPR = wsa.NewEPR("inproc://" + host + c.files.Path())
	}
	srv := transport.NewServer(mux)
	srv.Use(serverInterceptors()...)
	g.Network.Register(host, srv)
	return c, nil
}

// Close releases the client's endpoints.
func (c *Client) Close() {
	c.grid.Network.Deregister(c.host)
	_ = c.files.Close()
}

// ListenerEPR is the client's notification endpoint (the Scheduler
// subscribes it to the job set's topic).
func (c *Client) ListenerEPR() wsa.EndpointReference {
	return wsa.NewEPR("inproc://" + c.host + "/listener")
}

// FilesEPR is the client's file server endpoint.
func (c *Client) FilesEPR() wsa.EndpointReference { return c.filesEPR }

// AddFile publishes a local file referenced by Local(name) sources.
func (c *Client) AddFile(name string, content []byte) { c.files.Publish(name, content) }

// Submission tracks one submitted job set.
type Submission struct {
	Topic  string
	JobSet wsa.EndpointReference

	client *Client
	mu     sync.Mutex
	dirs   map[string]wsa.EndpointReference // job name → output directory
	jobs   map[string]wsa.EndpointReference // job name → job resource
	status string
	detail string
	done   chan struct{}
	events chan wsn.Notification
}

// Submit validates and submits a job set (Fig. 3 step 1), returning the
// submission handle. Credentials ride in an encrypted WS-Security
// header when the grid runs secured.
func (c *Client) Submit(ctx context.Context, spec *JobSet) (*Submission, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	env := soap.New(scheduler.SubmitRequest(spec, c.filesEPR, c.ListenerEPR()))
	if c.creds.Username != "" {
		if err := wssec.AttachUsernameToken(env, c.creds, false, time.Now()); err != nil {
			return nil, err
		}
		if cert, ok := c.grid.SchedulerCertificate(); ok {
			if err := wssec.EncryptSecurityHeader(env, cert); err != nil {
				return nil, err
			}
		}
	}
	resp, err := c.grid.Client.Invoke(ctx, c.grid.Scheduler.EPR(), scheduler.ActionSubmit, env)
	if err != nil {
		return nil, err
	}
	setEPR, topic, err := scheduler.ParseSubmitResponse(resp.Body)
	if err != nil {
		return nil, err
	}
	sub := &Submission{
		Topic:  topic,
		JobSet: setEPR,
		client: c,
		dirs:   make(map[string]wsa.EndpointReference),
		jobs:   make(map[string]wsa.EndpointReference),
		done:   make(chan struct{}),
		events: make(chan wsn.Notification, 256),
	}
	c.mu.Lock()
	c.submissions[topic] = sub
	// Deliver any events that arrived before the Submit reply was
	// processed (the broker races the response on the inproc fabric).
	var replay []wsn.Notification
	kept := c.pending[:0]
	for _, n := range c.pending {
		if strings.HasPrefix(n.Topic, topic+"/") {
			replay = append(replay, n)
		} else {
			kept = append(kept, n)
		}
	}
	c.pending = kept
	c.mu.Unlock()
	for _, n := range replay {
		sub.observe(n)
	}
	return sub, nil
}

// route delivers incoming notifications to their submission.
func (c *Client) route(_ context.Context, n wsn.Notification) {
	root, _, found := strings.Cut(n.Topic, "/")
	if !found {
		return
	}
	c.mu.Lock()
	sub := c.submissions[root]
	if sub == nil {
		// Keep a bounded raced-event buffer.
		if len(c.pending) < 1024 {
			c.pending = append(c.pending, n)
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	sub.observe(n)
}

// observe updates submission state from one event and tees it to the
// Events channel.
func (s *Submission) observe(n wsn.Notification) {
	segs := strings.Split(n.Topic, "/")
	if len(segs) >= 3 && segs[1] == "jobset" {
		s.mu.Lock()
		if s.status == "" {
			switch segs[2] {
			case "completed":
				s.status = scheduler.SetCompleted
			case "failed":
				s.status = scheduler.SetFailed
			case "cancelled":
				s.status = scheduler.SetCancelled
			}
			if s.status != "" {
				if n.Message != nil {
					s.detail = n.Message.ChildText(qDetail)
				}
				close(s.done)
			}
		}
		s.mu.Unlock()
	} else if ev, err := execution.ParseJobEvent(n.Message); err == nil {
		s.mu.Lock()
		if !ev.Directory.IsZero() {
			s.dirs[ev.JobName] = ev.Directory
		}
		if !ev.Job.IsZero() {
			s.jobs[ev.JobName] = ev.Job
		}
		s.mu.Unlock()
	}
	select {
	case s.events <- n:
	default:
	}
}

// Events exposes the raw notification stream (what the paper's client
// application displays "to keep the user informed of the job set's
// progress").
func (s *Submission) Events() <-chan wsn.Notification { return s.events }

// Wait blocks until the job set reaches a terminal status.
func (s *Submission) Wait(ctx context.Context) (status string, err error) {
	select {
	case <-s.done:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.status, nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// Status returns the terminal status and failure detail, if reached.
func (s *Submission) Status() (status, detail string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status, s.detail
}

// OutputDirectory reports where a job's outputs live, once known from
// its directory event.
func (s *Submission) OutputDirectory(jobName string) (wsa.EndpointReference, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	epr, ok := s.dirs[jobName]
	return epr, ok
}

// JobEPR reports a job's WS-Resource EPR, once known.
func (s *Submission) JobEPR(jobName string) (wsa.EndpointReference, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	epr, ok := s.jobs[jobName]
	return epr, ok
}

// FetchOutput retrieves a file a job produced, from wherever the job
// ran ("The client can use this EPR to retrieve files generated by the
// job", paper §4.6). If the directory event raced past the client
// (one-way delivery is unordered), the directory is recovered from the
// job-set WS-Resource, where the Scheduler persists it.
func (s *Submission) FetchOutput(ctx context.Context, jobName, fileName string) ([]byte, error) {
	dir, ok := s.OutputDirectory(jobName)
	if !ok {
		recovered, err := s.lookupDirectory(ctx, jobName)
		if err != nil {
			return nil, err
		}
		dir = recovered
	}
	return filesystem.FetchFile(ctx, s.client.grid.Client, dir, fileName)
}

// lookupDirectory reads a job's recorded output directory from the
// job-set resource's JobState property.
func (s *Submission) lookupDirectory(ctx context.Context, jobName string) (wsa.EndpointReference, error) {
	rc := wsrf.NewResourceClient(s.client.grid.Client, s.JobSet)
	states, err := rc.GetProperty(ctx, scheduler.QJobState)
	if err != nil {
		return wsa.EndpointReference{}, fmt.Errorf("core: output directory of %q: %w", jobName, err)
	}
	for _, st := range states {
		if st.Attr(xmlutil.Q("", "name")) != jobName {
			continue
		}
		raw := st.Attr(xmlutil.Q("", "dir"))
		if raw == "" {
			break
		}
		dir, err := wsa.ParseEPRString(raw)
		if err != nil {
			return wsa.EndpointReference{}, err
		}
		s.mu.Lock()
		s.dirs[jobName] = dir
		s.mu.Unlock()
		return dir, nil
	}
	return wsa.EndpointReference{}, fmt.Errorf("core: output directory of %q is not yet known", jobName)
}

// KillJob kills one running job via its job resource.
func (s *Submission) KillJob(ctx context.Context, jobName string) error {
	epr, ok := s.JobEPR(jobName)
	if !ok {
		return fmt.Errorf("core: job %q has no known EPR yet", jobName)
	}
	_, err := s.client.grid.Client.Call(ctx, epr, execution.ActionKill, execution.KillRequest())
	return err
}

// Cancel aborts the whole job set.
func (s *Submission) Cancel(ctx context.Context) error {
	_, err := s.client.grid.Client.Call(ctx, s.JobSet, scheduler.ActionCancel, scheduler.CancelRequest())
	return err
}

// qDetail is the failure-detail element in job-set events.
var qDetail = xmlutil.Q(scheduler.NS, "Detail")
