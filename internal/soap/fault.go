package soap

import (
	"errors"
	"fmt"

	"uvacg/internal/xmlutil"
)

// Fault code values defined by SOAP 1.2.
const (
	CodeSender   = "Sender"   // the message was malformed or unauthorized
	CodeReceiver = "Receiver" // the service failed to process a valid message
)

var (
	qFault  = xmlutil.Q(NS, "Fault")
	qCode   = xmlutil.Q(NS, "Code")
	qValue  = xmlutil.Q(NS, "Value")
	qReason = xmlutil.Q(NS, "Reason")
	qText   = xmlutil.Q(NS, "Text")
	qDetail = xmlutil.Q(NS, "Detail")
)

// Fault is a SOAP fault. It implements error so service code can return
// one directly; the dispatcher serializes it into the response body.
// WS-BaseFaults ride in the Detail element (see internal/wsrf/basefault).
type Fault struct {
	Code   string // CodeSender or CodeReceiver
	Reason string
	Detail *xmlutil.Element
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault [%s]: %s", f.Code, f.Reason)
}

// SenderFault builds a Sender fault with a formatted reason.
func SenderFault(format string, args ...any) *Fault {
	return &Fault{Code: CodeSender, Reason: fmt.Sprintf(format, args...)}
}

// ReceiverFault builds a Receiver fault with a formatted reason.
func ReceiverFault(format string, args ...any) *Fault {
	return &Fault{Code: CodeReceiver, Reason: fmt.Sprintf(format, args...)}
}

// Element renders the fault as the SOAP Fault body element.
func (f *Fault) Element() *xmlutil.Element {
	code := f.Code
	if code == "" {
		code = CodeReceiver
	}
	el := xmlutil.NewContainer(qFault,
		xmlutil.NewContainer(qCode, xmlutil.NewElement(qValue, code)),
		xmlutil.NewContainer(qReason, xmlutil.NewElement(qText, f.Reason)),
	)
	if f.Detail != nil {
		el.Append(xmlutil.NewContainer(qDetail, f.Detail))
	}
	return el
}

// Envelope wraps the fault in a complete SOAP envelope.
func (f *Fault) Envelope() *Envelope { return New(f.Element()) }

// IsFault reports whether a body element is a SOAP fault.
func IsFault(body *xmlutil.Element) bool {
	return body != nil && body.Name == qFault
}

// ParseFault decodes a SOAP Fault body element.
func ParseFault(body *xmlutil.Element) (*Fault, error) {
	if !IsFault(body) {
		return nil, fmt.Errorf("soap: element %v is not a Fault", body.Name)
	}
	f := &Fault{}
	if code := body.Child(qCode); code != nil {
		f.Code = code.ChildText(qValue)
	}
	if reason := body.Child(qReason); reason != nil {
		f.Reason = reason.ChildText(qText)
	}
	if detail := body.Child(qDetail); detail != nil && len(detail.Children) > 0 {
		f.Detail = detail.Children[0]
	}
	return f, nil
}

// FaultFromError converts any error into a Fault, passing *Fault values
// through unchanged so typed faults survive layered handlers.
func FaultFromError(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	return ReceiverFault("%s", err.Error())
}

// AsFault extracts a *Fault from an error chain, if one is present.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	ok := errors.As(err, &f)
	return f, ok
}
