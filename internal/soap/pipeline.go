package soap

import (
	"context"
	"sync"
)

// Side distinguishes the two ends of an invocation traversing the
// interceptor pipeline.
type Side int

const (
	// ClientSide marks a call leaving through a transport client.
	ClientSide Side = iota
	// ServerSide marks a call arriving at a transport server.
	ServerSide
)

// String names the side for diagnostics.
func (s Side) String() string {
	if s == ClientSide {
		return "client"
	}
	return "server"
}

// CallInfo describes one invocation as it traverses the interceptor
// chain — the shared vocabulary of the client and server pipelines
// (the per-invocation wrapper of paper Fig. 1, generalized so
// cross-cutting layers hang off one abstraction on both ends).
//
// Interceptors may mutate Request (add headers) before calling next;
// the transport stamps WS-Addressing headers and serializes only in
// the terminal handler, so mutations made anywhere in the chain reach
// the wire.
type CallInfo struct {
	// Side says whether this chain runs on the client or the server.
	Side Side
	// Addr is the full target address (client side only).
	Addr string
	// Path is the service path ("/SchedulerService"). On the client it
	// is derived from the target address; on the server it is the mux
	// path the message arrived at.
	Path string
	// Action is the WS-Addressing action URI.
	Action string
	// OneWay marks a one-way message: no reply envelope ever exists.
	OneWay bool
	// Attempt is the zero-based delivery attempt, maintained by the
	// retry interceptor; 0 for never-retried calls.
	Attempt int
	// Request is the envelope being sent (client) or received (server).
	Request *Envelope
}

// Handler continues a call: the next interceptor, or the terminal
// transport/dispatch step. One-way calls return a nil envelope.
type Handler func(ctx context.Context, call *CallInfo) (*Envelope, error)

// Interceptor is one layer of the invocation pipeline, used
// symmetrically by transport clients and servers: observe or rewrite
// the call, then delegate to next (possibly more than once — retry —
// or not at all — short-circuit faults).
type Interceptor func(ctx context.Context, call *CallInfo, next Handler) (*Envelope, error)

// Chain is an ordered interceptor list. Interceptors added earlier run
// outermost. The zero value is an empty, usable chain; Use may be
// called concurrently with Bind.
type Chain struct {
	mu   sync.RWMutex
	list []Interceptor
}

// Use appends interceptors to the chain.
func (c *Chain) Use(ics ...Interceptor) {
	for _, ic := range ics {
		if ic == nil {
			panic("soap: Use with nil interceptor")
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.list = append(c.list, ics...)
}

// Len reports the number of installed interceptors.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.list)
}

// Bind composes the chain's current interceptors around a terminal
// handler. An empty chain returns the terminal handler itself.
func (c *Chain) Bind(terminal Handler) Handler {
	c.mu.RLock()
	ics := c.list
	c.mu.RUnlock()
	h := terminal
	for i := len(ics) - 1; i >= 0; i-- {
		ic := ics[i]
		inner := h
		h = func(ctx context.Context, call *CallInfo) (*Envelope, error) {
			return ic(ctx, call, inner)
		}
	}
	return h
}
