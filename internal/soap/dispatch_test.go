package soap

import (
	"context"
	"reflect"
	"testing"

	"uvacg/internal/xmlutil"
)

func echoHandler(ctx context.Context, req *Envelope) (*Envelope, error) {
	return New(req.Body.Clone()), nil
}

func TestDispatcherRoutesByAction(t *testing.T) {
	d := NewDispatcher()
	d.Register("urn:Echo", echoHandler)
	d.Register("urn:Fail", func(ctx context.Context, req *Envelope) (*Envelope, error) {
		return nil, SenderFault("always fails")
	})

	req := New(xmlutil.NewElement(xmlutil.Q(nsT, "ping"), "hi"))
	resp, err := d.Dispatch(context.Background(), "urn:Echo", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body.Text != "hi" {
		t.Errorf("echo = %q", resp.Body.Text)
	}

	_, err = d.Dispatch(context.Background(), "urn:Fail", req)
	if f, ok := AsFault(err); !ok || f.Code != CodeSender {
		t.Fatalf("want sender fault, got %v", err)
	}

	_, err = d.Dispatch(context.Background(), "urn:Nope", req)
	if f, ok := AsFault(err); !ok || f.Code != CodeSender {
		t.Fatalf("unknown action should be a sender fault, got %v", err)
	}
}

func TestDispatcherVoidResponse(t *testing.T) {
	d := NewDispatcher()
	d.Register("urn:Void", func(ctx context.Context, req *Envelope) (*Envelope, error) {
		return nil, nil
	})
	resp, faulted := d.DispatchToEnvelope(context.Background(), "urn:Void", &Envelope{})
	if faulted {
		t.Fatal("void should not fault")
	}
	if resp == nil || resp.Body != nil {
		t.Fatalf("void response should be an empty envelope, got %+v", resp)
	}
}

func TestDispatchToEnvelopeFault(t *testing.T) {
	d := NewDispatcher()
	resp, faulted := d.DispatchToEnvelope(context.Background(), "urn:Missing", &Envelope{})
	if !faulted || !IsFault(resp.Body) {
		t.Fatalf("want fault envelope, got faulted=%v body=%v", faulted, resp.Body)
	}
}

func TestDispatcherInterceptorOrder(t *testing.T) {
	d := NewDispatcher()
	var order []string
	mk := func(name string) Interceptor {
		return func(ctx context.Context, call *CallInfo, next Handler) (*Envelope, error) {
			order = append(order, name+"-in")
			resp, err := next(ctx, call)
			order = append(order, name+"-out")
			return resp, err
		}
	}
	d.Use(mk("outer"))
	d.Use(mk("inner"))
	d.Register("urn:Echo", echoHandler)
	if _, err := d.Dispatch(context.Background(), "urn:Echo", New(xmlutil.NewElement(xmlutil.Q(nsT, "p"), ""))); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer-in", "inner-in", "inner-out", "outer-out"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("interceptor order = %v", order)
	}
}

func TestDispatcherInterceptorSeesCallInfo(t *testing.T) {
	d := NewDispatcher()
	var seen CallInfo
	d.Use(func(ctx context.Context, call *CallInfo, next Handler) (*Envelope, error) {
		seen = *call
		return next(ctx, call)
	})
	d.Register("urn:Echo", echoHandler)
	call := &CallInfo{
		Side:    ServerSide,
		Path:    "/Svc",
		Action:  "urn:Echo",
		Request: New(xmlutil.NewElement(xmlutil.Q(nsT, "p"), "x")),
	}
	if _, err := d.DispatchCall(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	if seen.Path != "/Svc" || seen.Action != "urn:Echo" || seen.Side != ServerSide {
		t.Fatalf("interceptor saw %+v", seen)
	}
}

func TestChainShortCircuit(t *testing.T) {
	d := NewDispatcher()
	d.Use(func(ctx context.Context, call *CallInfo, next Handler) (*Envelope, error) {
		return nil, SenderFault("blocked")
	})
	reached := false
	d.Register("urn:Echo", func(ctx context.Context, req *Envelope) (*Envelope, error) {
		reached = true
		return nil, nil
	})
	_, err := d.Dispatch(context.Background(), "urn:Echo", &Envelope{})
	if f, ok := AsFault(err); !ok || f.Code != CodeSender {
		t.Fatalf("want sender fault, got %v", err)
	}
	if reached {
		t.Fatal("short-circuited interceptor must not reach the handler")
	}
}

func TestDispatcherRegistrationPanics(t *testing.T) {
	d := NewDispatcher()
	d.Register("urn:A", echoHandler)
	for name, fn := range map[string]func(){
		"duplicate": func() { d.Register("urn:A", echoHandler) },
		"empty":     func() { d.Register("", echoHandler) },
		"nil":       func() { d.Register("urn:B", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDispatcherIntrospection(t *testing.T) {
	d := NewDispatcher()
	d.Register("urn:B", echoHandler)
	d.Register("urn:A", echoHandler)
	if got := d.Actions(); !reflect.DeepEqual(got, []string{"urn:A", "urn:B"}) {
		t.Errorf("Actions = %v", got)
	}
	if !d.Handles("urn:A") || d.Handles("urn:C") {
		t.Error("Handles misreports")
	}
}

func TestMux(t *testing.T) {
	m := NewMux()
	fss := NewDispatcher()
	es := NewDispatcher()
	m.Handle("/FileSystemService", fss)
	m.Handle("/ExecutionService", es)
	if d, ok := m.Lookup("/FileSystemService"); !ok || d != fss {
		t.Fatal("lookup failed")
	}
	if _, ok := m.Lookup("/Nope"); ok {
		t.Fatal("lookup of absent path should fail")
	}
	want := []string{"/ExecutionService", "/FileSystemService"}
	if got := m.Paths(); !reflect.DeepEqual(got, want) {
		t.Errorf("Paths = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate path should panic")
			}
		}()
		m.Handle("/ExecutionService", es)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("relative path should panic")
			}
		}()
		m.Handle("nope", es)
	}()
}
