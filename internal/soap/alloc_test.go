package soap

import (
	"testing"
)

// Allocation regression pins for the envelope hot path. The fast codec
// dropped marshal from 38 allocs/op to 1 and unmarshal from 170 to ~13
// (BENCH_7.json); these ceilings leave modest headroom so future PRs
// cannot silently re-introduce per-call garbage.
const (
	maxMarshalAllocs   = 3
	maxUnmarshalAllocs = 24
)

func TestEnvelopeMarshalAllocs(t *testing.T) {
	env := benchEnvelope()
	if _, err := env.Marshal(); err != nil { // warm the size hint
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := env.Marshal(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxMarshalAllocs {
		t.Errorf("envelope marshal allocates %.1f times per op, want <= %d", allocs, maxMarshalAllocs)
	}
}

func TestEnvelopeUnmarshalAllocs(t *testing.T) {
	wire, err := benchEnvelope().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Unmarshal(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxUnmarshalAllocs {
		t.Errorf("envelope unmarshal allocates %.1f times per op, want <= %d", allocs, maxUnmarshalAllocs)
	}
}
