package soap

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"uvacg/internal/xmlutil"
)

func TestFaultRoundTrip(t *testing.T) {
	f := SenderFault("bad request %d", 7)
	f.Detail = xmlutil.NewElement(xmlutil.Q(nsT, "JobFault"), "job-12")
	data, err := f.Envelope().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !IsFault(env.Body) {
		t.Fatal("body should be a fault")
	}
	back, err := ParseFault(env.Body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Code != CodeSender || back.Reason != "bad request 7" {
		t.Fatalf("got %+v", back)
	}
	if back.Detail == nil || back.Detail.Text != "job-12" {
		t.Fatalf("detail lost: %v", back.Detail)
	}
}

func TestFaultDefaultsToReceiver(t *testing.T) {
	f := &Fault{Reason: "boom"}
	el := f.Element()
	code := el.Child(qCode).ChildText(qValue)
	if code != CodeReceiver {
		t.Errorf("default code = %q", code)
	}
}

func TestFaultErrorInterface(t *testing.T) {
	var err error = ReceiverFault("disk full")
	if !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestParseFaultRejectsNonFault(t *testing.T) {
	if _, err := ParseFault(xmlutil.NewElement(xmlutil.Q(nsT, "x"), "")); err == nil {
		t.Fatal("expected error")
	}
}

func TestIsFaultNil(t *testing.T) {
	if IsFault(nil) {
		t.Fatal("nil body is not a fault")
	}
}

func TestFaultFromErrorPassthrough(t *testing.T) {
	orig := SenderFault("denied")
	wrapped := fmt.Errorf("while dispatching: %w", orig)
	got := FaultFromError(wrapped)
	if got != orig {
		t.Fatal("wrapped fault should be extracted intact")
	}
	plain := FaultFromError(errors.New("plain"))
	if plain.Code != CodeReceiver || plain.Reason != "plain" {
		t.Fatalf("plain error conversion: %+v", plain)
	}
}

func TestAsFault(t *testing.T) {
	f, ok := AsFault(fmt.Errorf("x: %w", SenderFault("nope")))
	if !ok || f.Reason != "nope" {
		t.Fatalf("AsFault = %v %v", f, ok)
	}
	if _, ok := AsFault(errors.New("y")); ok {
		t.Fatal("plain error should not be a fault")
	}
}
