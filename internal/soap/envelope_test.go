package soap

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"uvacg/internal/xmlutil"
)

var nsT = "urn:uvacg:test"

func testEnvelope() *Envelope {
	return New(xmlutil.NewContainer(xmlutil.Q(nsT, "RunJob"),
		xmlutil.NewElement(xmlutil.Q(nsT, "Executable"), "sim.exe"),
		xmlutil.NewElement(xmlutil.Q(nsT, "Args"), "-n 100"),
	)).AddHeader(xmlutil.NewElement(xmlutil.Q(nsT, "To"), "http://node-a/ES")).
		AddHeader(xmlutil.NewElement(xmlutil.Q(nsT, "Action"), "urn:Run"))
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := testEnvelope()
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("<?xml")) {
		t.Error("missing XML declaration")
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if len(back.Headers) != 2 {
		t.Fatalf("want 2 headers, got %d", len(back.Headers))
	}
	if !back.Body.Equal(env.Body) {
		t.Fatalf("body mismatch:\n%s\n%s", env.Body, back.Body)
	}
}

func TestEnvelopeEmptyBodyRoundTrip(t *testing.T) {
	env := &Envelope{}
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Body != nil {
		t.Fatalf("void response should have nil body, got %v", back.Body)
	}
}

func TestEnvelopeHeaderAccessors(t *testing.T) {
	env := testEnvelope()
	if got := env.HeaderText(xmlutil.Q(nsT, "Action")); got != "urn:Run" {
		t.Errorf("HeaderText = %q", got)
	}
	if env.Header(xmlutil.Q(nsT, "Missing")) != nil {
		t.Error("missing header should be nil")
	}
	if env.HeaderText(xmlutil.Q(nsT, "Missing")) != "" {
		t.Error("missing header text should be empty")
	}
	if n := env.RemoveHeader(xmlutil.Q(nsT, "To")); n != 1 {
		t.Errorf("RemoveHeader = %d", n)
	}
	if len(env.Headers) != 1 {
		t.Errorf("headers after removal = %d", len(env.Headers))
	}
}

func TestEnvelopeCloneIsDeep(t *testing.T) {
	env := testEnvelope()
	cp := env.Clone()
	cp.Headers[0].Text = "changed"
	cp.Body.Children[0].Text = "other.exe"
	if env.Headers[0].Text != "http://node-a/ES" {
		t.Error("clone header mutation leaked")
	}
	if env.Body.Children[0].Text != "sim.exe" {
		t.Error("clone body mutation leaked")
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not xml":     "garbage",
		"wrong root":  `<x xmlns="` + NS + `"/>`,
		"no body":     `<Envelope xmlns="` + NS + `"><Header/></Envelope>`,
		"two bodies":  `<Envelope xmlns="` + NS + `"><Body/><Body/></Envelope>`,
		"fat body":    `<Envelope xmlns="` + NS + `"><Body><a/><b/></Body></Envelope>`,
		"stray child": `<Envelope xmlns="` + NS + `"><Bogus/><Body/></Envelope>`,
	}
	for name, doc := range cases {
		if _, err := Unmarshal([]byte(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadFromStream(t *testing.T) {
	data, err := testEnvelope().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := Read(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if env.Body == nil {
		t.Fatal("nil body from Read")
	}
}

func genIdent(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := 1 + r.Intn(10)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(letters[r.Intn(len(letters))])
	}
	return b.String()
}

func genElement(r *rand.Rand, depth int) *xmlutil.Element {
	e := &xmlutil.Element{Name: xmlutil.Q("urn:"+genIdent(r), genIdent(r))}
	if depth > 0 && r.Intn(2) == 0 {
		for i, n := 0, 1+r.Intn(3); i < n; i++ {
			e.Children = append(e.Children, genElement(r, depth-1))
		}
	} else {
		e.Text = genIdent(r)
	}
	return e
}

// TestEnvelopeRoundTripProperty: arbitrary headers and bodies survive the
// wire encoding.
func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		env := New(genElement(r, 2))
		for i, n := 0, r.Intn(4); i < n; i++ {
			env.AddHeader(genElement(r, 1))
		}
		data, err := env.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if len(back.Headers) != len(env.Headers) || !back.Body.Equal(env.Body) {
			return false
		}
		for i := range env.Headers {
			if !back.Headers[i].Equal(env.Headers[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
