package soap

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"uvacg/internal/xmlutil"
)

// testEnvelope builds a request-shaped envelope with WS-A headers.
func fastTestEnvelope() *Envelope {
	wsa := "http://www.w3.org/2005/08/addressing"
	env := New(xmlutil.NewContainer(xmlutil.Q("urn:uvacg:sched", "Submit"),
		xmlutil.NewElement(xmlutil.Q("urn:uvacg:sched", "Document"), "<JobSet name=\"x\"/>")))
	env.AddHeader(xmlutil.NewElement(xmlutil.Q(wsa, "Action"), "urn:Submit"))
	env.AddHeader(xmlutil.NewElement(xmlutil.Q(wsa, "To"), "soap.tcp://h:1/p"))
	return env
}

// TestFastPathMatchesSlowPath pins the integration contract: with the
// fast codec on or off, Marshal/Unmarshal round-trip to the same
// envelope.
func TestFastPathMatchesSlowPath(t *testing.T) {
	env := fastTestEnvelope()

	fastBytes, err := env.Marshal()
	if err != nil {
		t.Fatalf("fast marshal: %v", err)
	}
	SetFastCodec(false)
	slowBytes, serr := env.Marshal()
	SetFastCodec(true)
	if serr != nil {
		t.Fatalf("slow marshal: %v", serr)
	}

	for _, wire := range [][]byte{fastBytes, slowBytes} {
		fast, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("fast unmarshal of %q: %v", wire, err)
		}
		SetFastCodec(false)
		slow, serr := Unmarshal(wire)
		SetFastCodec(true)
		if serr != nil {
			t.Fatalf("slow unmarshal of %q: %v", wire, serr)
		}
		if !fast.Body.Equal(slow.Body) || len(fast.Headers) != len(slow.Headers) {
			t.Fatalf("decoders disagree on %q", wire)
		}
		for i := range fast.Headers {
			if !fast.Headers[i].Equal(slow.Headers[i]) {
				t.Fatalf("header %d disagrees on %q", i, wire)
			}
		}
		if !fast.Body.Equal(env.Body) {
			t.Fatalf("round trip lost the body: %s", fast.Body)
		}
	}
}

func TestAppendToAndMarshalTo(t *testing.T) {
	env := fastTestEnvelope()
	want, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	got, err := env.AppendTo([]byte("prefix:"))
	if err != nil {
		t.Fatalf("AppendTo: %v", err)
	}
	if !bytes.Equal(got, append([]byte("prefix:"), want...)) {
		t.Fatalf("AppendTo mismatch:\n got %q\nwant %q", got, want)
	}

	var buf bytes.Buffer
	if err := env.MarshalTo(&buf); err != nil {
		t.Fatalf("MarshalTo: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("MarshalTo mismatch:\n got %q\nwant %q", buf.Bytes(), want)
	}
}

// TestMarshalFallsBackOutsideFastShape forces a tree the fast encoder
// refuses (non-ASCII text) and checks Marshal still succeeds via
// encoding/xml.
func TestMarshalFallsBackOutsideFastShape(t *testing.T) {
	env := New(xmlutil.NewElement(xmlutil.Q("urn:x", "Op"), "héllo"))
	wire, err := env.Marshal()
	if err != nil {
		t.Fatalf("fallback marshal: %v", err)
	}
	back, err := Unmarshal(wire)
	if err != nil {
		t.Fatalf("unmarshal fallback bytes: %v", err)
	}
	if back.Body.Text != "héllo" {
		t.Fatalf("fallback round trip lost text: %q", back.Body.Text)
	}
}

func TestReadRejectsOversizedEnvelope(t *testing.T) {
	SetMaxEnvelopeBytes(1 << 10)
	defer SetMaxEnvelopeBytes(0)

	big := "<Envelope xmlns=\"" + NS + "\"><Body><X>" +
		strings.Repeat("a", 2<<10) + "</X></Body></Envelope>"
	_, err := Read(strings.NewReader(big))
	if err == nil {
		t.Fatal("oversized envelope accepted")
	}
	if !errors.Is(err, ErrEnvelopeTooLarge) {
		t.Fatalf("error does not wrap ErrEnvelopeTooLarge: %v", err)
	}
	var f *Fault
	if !errors.As(err, &f) || f.Code != CodeSender {
		t.Fatalf("oversized envelope did not yield a Sender fault: %v", err)
	}

	// At exactly the bound the envelope must still parse.
	pad := 1<<10 - len("<Envelope xmlns=\""+NS+"\"><Body><X></X></Body></Envelope>")
	exact := "<Envelope xmlns=\"" + NS + "\"><Body><X>" +
		strings.Repeat("a", pad) + "</X></Body></Envelope>"
	if len(exact) != 1<<10 {
		t.Fatalf("test setup: envelope is %d bytes, want %d", len(exact), 1<<10)
	}
	if _, err := Read(strings.NewReader(exact)); err != nil {
		t.Fatalf("at-bound envelope rejected: %v", err)
	}
}
