// Package soap implements the SOAP envelope processing model the testbed
// is built on: envelopes with header blocks and a single body element,
// SOAP faults, and an action-based dispatch table. It deliberately mirrors
// the slice of SOAP 1.2 that WSRF.NET services exercise — everything of
// interest in the paper travels in header blocks (WS-Addressing,
// WS-Security) and one body element per message.
package soap

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"uvacg/internal/soap/fastcodec"
	"uvacg/internal/xmlutil"
)

// NS is the SOAP 1.2 envelope namespace.
const NS = "http://www.w3.org/2003/05/soap-envelope"

var (
	qEnvelope = xmlutil.Q(NS, "Envelope")
	qHeader   = xmlutil.Q(NS, "Header")
	qBody     = xmlutil.Q(NS, "Body")
)

// Envelope is a SOAP message: an ordered list of header blocks and a
// single body element. A nil Body is legal and models an empty response
// (the reply to a void method, which the paper distinguishes from a
// one-way message that has no reply at all).
type Envelope struct {
	Headers []*xmlutil.Element
	Body    *xmlutil.Element
	// Attachments are binary parts riding outside the XML, referenced
	// from the body by <xop:Include> elements (see attach.go). They are
	// carried natively by bindings that support them and inlined as
	// base64 otherwise; Marshal serializes only the XML.
	Attachments []Attachment
}

// New builds an envelope around a body element.
func New(body *xmlutil.Element) *Envelope {
	return &Envelope{Body: body}
}

// AddHeader appends a header block and returns the envelope for chaining.
func (e *Envelope) AddHeader(h *xmlutil.Element) *Envelope {
	e.Headers = append(e.Headers, h)
	return e
}

// Header returns the first header block with the given name, or nil.
func (e *Envelope) Header(name xmlutil.QName) *xmlutil.Element {
	for _, h := range e.Headers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// HeaderText returns the text content of the named header block.
func (e *Envelope) HeaderText(name xmlutil.QName) string {
	if h := e.Header(name); h != nil {
		return h.Text
	}
	return ""
}

// RemoveHeader deletes every header block with the given name, returning
// the count removed.
func (e *Envelope) RemoveHeader(name xmlutil.QName) int {
	kept := e.Headers[:0]
	removed := 0
	for _, h := range e.Headers {
		if h.Name == name {
			removed++
			continue
		}
		kept = append(kept, h)
	}
	e.Headers = kept
	return removed
}

// Clone deep-copies the envelope. Attachment data is shared (the parts
// are treated as immutable once attached), but the list itself is
// copied so Attach on the clone cannot disturb the original.
func (e *Envelope) Clone() *Envelope {
	out := &Envelope{}
	for _, h := range e.Headers {
		out.Headers = append(out.Headers, h.Clone())
	}
	out.Body = e.Body.Clone()
	if len(e.Attachments) > 0 {
		out.Attachments = append([]Attachment(nil), e.Attachments...)
	}
	return out
}

// SetFastCodec enables or disables the hand-rolled fastcodec path under
// Marshal, AppendTo, MarshalTo and Unmarshal (and the resourcedb blob
// codec) process-wide. The fast path is semantically equivalent to the
// encoding/xml path (enforced by FuzzCodecEquivalence in
// internal/soap/fastcodec); the switch exists so a suspected codec bug
// can be ruled out in production without a rebuild (-nofastcodec).
func SetFastCodec(enabled bool) { fastcodec.SetEnabled(enabled) }

// FastCodecEnabled reports whether the fast-path codec is active.
func FastCodecEnabled() bool { return fastcodec.Enabled() }

// maxEnvelopeBytes bounds how much soap.Read (and the transport request
// readers that feed Unmarshal) will buffer for one envelope. A corrupt
// or malicious peer otherwise drives io.ReadAll into unbounded
// allocation. The default matches the soap.tcp frame cap.
var maxEnvelopeBytes atomic.Int64

const defaultMaxEnvelopeBytes = 64 << 20

func init() { maxEnvelopeBytes.Store(defaultMaxEnvelopeBytes) }

// SetMaxEnvelopeBytes sets the process-wide envelope size bound; zero or
// negative restores the default.
func SetMaxEnvelopeBytes(n int64) {
	if n <= 0 {
		n = defaultMaxEnvelopeBytes
	}
	maxEnvelopeBytes.Store(n)
}

// MaxEnvelopeBytes returns the current envelope size bound.
func MaxEnvelopeBytes() int64 { return maxEnvelopeBytes.Load() }

// ErrEnvelopeTooLarge is wrapped by the fault Read returns for an
// oversized envelope, so transports can branch on it.
var ErrEnvelopeTooLarge = fmt.Errorf("envelope exceeds size bound")

// marshalBufPool recycles the scratch buffers envelopes are encoded
// into on the encoding/xml fallback path: the buffer's growth is the
// only allocation that encoder cannot avoid.
var marshalBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// marshalSizeHint tracks the previous marshal's output length so the
// fast path usually right-sizes its single allocation.
var marshalSizeHint atomic.Int64

// Marshal serializes the envelope (XML only; attachments travel in the
// binding's framing or are inlined beforehand) to wire form.
func (e *Envelope) Marshal() ([]byte, error) {
	if fastcodec.Enabled() {
		hint := int(marshalSizeHint.Load())
		if hint < 256 {
			hint = 256
		}
		if out, ok := fastcodec.AppendEnvelope(make([]byte, 0, hint), NS, e.Headers, e.Body); ok {
			marshalSizeHint.Store(int64(len(out)))
			return out, nil
		}
	}
	return e.marshalSlow(nil)
}

// AppendTo appends the envelope's wire form to dst (which may be nil)
// and returns the extended slice, avoiding both the encoder's pooled
// scratch buffer and the final copy when the fast path applies.
func (e *Envelope) AppendTo(dst []byte) ([]byte, error) {
	if fastcodec.Enabled() {
		if out, ok := fastcodec.AppendEnvelope(dst, NS, e.Headers, e.Body); ok {
			return out, nil
		}
	}
	return e.marshalSlow(dst)
}

// MarshalTo writes the envelope's wire form to w through a pooled
// scratch buffer, so steady-state serialization to a stream allocates
// nothing at all.
func (e *Envelope) MarshalTo(w io.Writer) error {
	bp := marshalScratchPool.Get().(*[]byte)
	buf, err := e.AppendTo((*bp)[:0])
	if err != nil {
		marshalScratchPool.Put(bp)
		return err
	}
	_, werr := w.Write(buf)
	*bp = buf[:0]
	marshalScratchPool.Put(bp)
	return werr
}

// marshalScratchPool recycles MarshalTo's staging buffers.
var marshalScratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// marshalSlow is the encoding/xml reference path: it materializes the
// wrapper tree and runs the token encoder, then appends to dst.
func (e *Envelope) marshalSlow(dst []byte) ([]byte, error) {
	buf := marshalBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer marshalBufPool.Put(buf)
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(buf)
	root := &xmlutil.Element{Name: qEnvelope}
	if len(e.Headers) > 0 {
		hdr := &xmlutil.Element{Name: qHeader}
		hdr.Children = append(hdr.Children, e.Headers...)
		root.Children = append(root.Children, hdr)
	}
	body := &xmlutil.Element{Name: qBody}
	if e.Body != nil {
		body.Children = []*xmlutil.Element{e.Body}
	}
	root.Children = append(root.Children, body)
	if err := enc.Encode(root); err != nil {
		return nil, fmt.Errorf("soap: marshal envelope: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return append(dst, buf.Bytes()...), nil
}

// Unmarshal parses wire bytes into an Envelope, validating the SOAP
// structure (envelope/body element names, at most one body child). The
// fast decoder handles recognized shapes; anything it refuses goes
// through encoding/xml.
func Unmarshal(data []byte) (*Envelope, error) {
	if fastcodec.Enabled() {
		if root, ok := fastcodec.Decode(data); ok {
			return fromElement(root)
		}
	}
	root, err := xmlutil.UnmarshalElement(data)
	if err != nil {
		return nil, fmt.Errorf("soap: parse: %w", err)
	}
	return fromElement(root)
}

// Read parses an envelope from a stream, refusing to buffer more than
// MaxEnvelopeBytes with a Sender fault.
func Read(r io.Reader) (*Envelope, error) {
	max := maxEnvelopeBytes.Load()
	data, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, fmt.Errorf("soap: read: %w", err)
	}
	if int64(len(data)) > max {
		return nil, fmt.Errorf("soap: read: %w: %w",
			SenderFault("envelope exceeds %d byte limit", max), ErrEnvelopeTooLarge)
	}
	return Unmarshal(data)
}

func fromElement(root *xmlutil.Element) (*Envelope, error) {
	if root.Name != qEnvelope {
		return nil, fmt.Errorf("soap: root element %v is not a SOAP envelope", root.Name)
	}
	env := &Envelope{}
	sawBody := false
	for _, c := range root.Children {
		switch c.Name {
		case qHeader:
			env.Headers = append(env.Headers, c.Children...)
		case qBody:
			if sawBody {
				return nil, fmt.Errorf("soap: multiple Body elements")
			}
			sawBody = true
			switch len(c.Children) {
			case 0:
				// empty body: void response
			case 1:
				env.Body = c.Children[0]
			default:
				return nil, fmt.Errorf("soap: body has %d children, want at most 1", len(c.Children))
			}
		default:
			return nil, fmt.Errorf("soap: unexpected envelope child %v", c.Name)
		}
	}
	if !sawBody {
		return nil, fmt.Errorf("soap: envelope has no Body")
	}
	return env, nil
}
