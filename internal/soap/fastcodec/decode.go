package fastcodec

import (
	"strings"

	"uvacg/internal/xmlutil"
)

// Decode tokenizes data directly into an xmlutil.Element tree and
// reports whether the document was inside the fast path's recognized
// shape. ok=false — for malformed input as much as for valid XML the
// fast path does not handle — means the caller must fall back to the
// encoding/xml path, so a successful Decode is the only observable
// difference and it is checked (by FuzzCodecEquivalence) to agree with
// encoding/xml exactly.
//
// Allocation discipline: nodes come from slab chunks, child slices
// from a pointer arena, and text/attribute values are substrings of a
// single string conversion of the input — zero-copy unless an entity
// or line-ending normalization forces a rewrite. The returned tree is
// owned by the caller and individually garbage-collected; nothing is
// pooled or reused across calls, so retaining decoded documents (as
// resource property stores do) is safe.
func Decode(data []byte) (*xmlutil.Element, bool) {
	// One pass admits the ASCII subset: any byte outside printable
	// ASCII + tab/newline/CR means encoding/xml's unicode handling is
	// required and the fast path bows out.
	for i := 0; i < len(data); i++ {
		c := data[i]
		if c >= 0x7F || (c < 0x20 && c != '\t' && c != '\n' && c != '\r') {
			return nil, false
		}
	}
	p := parser{s: string(data)}
	p.skipSpace()
	// Prolog and any leading processing instructions are skipped, as
	// encoding/xml's Unmarshal skips ProcInst tokens before the root.
	for strings.HasPrefix(p.s[p.pos:], "<?") {
		// encoding/xml demands a target name right after "<?".
		if p.pos+2 >= len(p.s) || !isNameStart(p.s[p.pos+2]) {
			return nil, false
		}
		end := strings.Index(p.s[p.pos:], "?>")
		if end < 0 {
			return nil, false
		}
		// encoding/xml validates the xml declaration's version and
		// encoding pseudo-attributes (a non-1.0 version or non-UTF-8
		// charset is an error); rather than parse them, accept only the
		// canonical prolog whenever either keyword appears.
		pi := p.s[p.pos : p.pos+end+2]
		if (strings.Contains(pi, "version") || strings.Contains(pi, "encoding")) && pi+"\n" != Header {
			return nil, false
		}
		p.pos += end + 2
		p.skipSpace()
	}
	if p.pos >= len(p.s) || p.s[p.pos] != '<' {
		return nil, false
	}
	root, ok := p.element(0)
	if !ok {
		return nil, false
	}
	// Content after the root is ignored, matching xml.Unmarshal, which
	// stops reading at the root's end tag.
	return root, true
}

type nsBinding struct {
	prefix string
	uri    string
}

type rawAttr struct {
	prefix string
	local  string
	value  string
	dirty  bool // value needs entity decoding or \r normalization
}

type parser struct {
	s   string
	pos int

	bindings []nsBinding // namespace scope stack
	kids     []*xmlutil.Element
	attrs    []rawAttr

	elemSlab []xmlutil.Element
	ptrSlab  []*xmlutil.Element
}

// alloc hands out one Element from the slab, amortizing node
// allocations across the document.
func (p *parser) alloc() *xmlutil.Element {
	if len(p.elemSlab) == 0 {
		p.elemSlab = make([]xmlutil.Element, 64)
	}
	e := &p.elemSlab[0]
	p.elemSlab = p.elemSlab[1:]
	return e
}

// allocPtrs copies kids into an arena-backed slice of exactly that
// length.
func (p *parser) allocPtrs(kids []*xmlutil.Element) []*xmlutil.Element {
	if len(p.ptrSlab) < len(kids) {
		n := 64
		if len(kids) > n {
			n = len(kids)
		}
		p.ptrSlab = make([]*xmlutil.Element, n)
	}
	out := p.ptrSlab[:len(kids):len(kids)]
	p.ptrSlab = p.ptrSlab[len(kids):]
	copy(out, kids)
	return out
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// name reads prefix:local at the cursor. An absent prefix returns "".
func (p *parser) name() (prefix, local string, ok bool) {
	start := p.pos
	if p.pos >= len(p.s) || !isNameStart(p.s[p.pos]) {
		return "", "", false
	}
	colon := -1
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if isNameByte(c) {
			p.pos++
			continue
		}
		if c == ':' && colon < 0 {
			colon = p.pos
			p.pos++
			// The part after the colon must restart a name.
			if p.pos >= len(p.s) || !isNameStart(p.s[p.pos]) {
				return "", "", false
			}
			continue
		}
		break
	}
	if colon < 0 {
		return "", p.s[start:p.pos], true
	}
	return p.s[start:colon], p.s[colon+1 : p.pos], true
}

// lookup resolves a namespace prefix against the scope stack,
// mirroring encoding/xml: "xml" is predeclared, an undeclared prefix
// resolves to itself, and "" resolves to the innermost default (or "").
func (p *parser) lookup(prefix string) string {
	if prefix == "xml" {
		return xmlNamespace
	}
	for i := len(p.bindings) - 1; i >= 0; i-- {
		if p.bindings[i].prefix == prefix {
			return p.bindings[i].uri
		}
	}
	if prefix == "" {
		return ""
	}
	return prefix
}

// element parses one element at the cursor ('<' already verified).
func (p *parser) element(depth int) (*xmlutil.Element, bool) {
	if depth > maxDepth {
		return nil, false
	}
	nsMark, attrMark := len(p.bindings), len(p.attrs)
	defer func() { p.attrs = p.attrs[:attrMark] }()
	p.pos++ // '<'
	rawStart := p.pos
	prefix, local, ok := p.name()
	if !ok {
		return nil, false
	}
	rawName := p.s[rawStart:p.pos]

	// Attributes buffer first: every xmlns on this tag is in scope for
	// the tag's own name and all its attributes, regardless of order.
	selfClosing := false
	for {
		mark := p.pos
		p.skipSpace()
		if p.pos >= len(p.s) {
			return nil, false
		}
		if c := p.s[p.pos]; c == '>' {
			p.pos++
			break
		} else if c == '/' {
			if p.pos+1 >= len(p.s) || p.s[p.pos+1] != '>' {
				return nil, false
			}
			p.pos += 2
			selfClosing = true
			break
		}
		if mark == p.pos {
			return nil, false // attributes must be space-separated
		}
		ap, al, ok := p.name()
		if !ok {
			return nil, false
		}
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != '=' {
			return nil, false
		}
		p.pos++
		p.skipSpace()
		val, dirty, ok := p.attrValue()
		if !ok {
			return nil, false
		}
		p.attrs = append(p.attrs, rawAttr{prefix: ap, local: al, value: val, dirty: dirty})
	}

	// Namespace declarations, then name resolution.
	for i := attrMark; i < len(p.attrs); i++ {
		a := p.attrs[i]
		if a.prefix == "xmlns" || (a.prefix == "" && a.local == "xmlns") {
			uri, ok := p.cleanValue(a)
			if !ok {
				return nil, false
			}
			pfx := ""
			if a.prefix == "xmlns" {
				pfx = a.local
			}
			p.bindings = append(p.bindings, nsBinding{prefix: pfx, uri: uri})
		}
	}
	e := p.alloc()
	e.Name = xmlutil.QName{Space: p.lookup(prefix), Local: local}
	for i := attrMark; i < len(p.attrs); i++ {
		a := p.attrs[i]
		if a.prefix == "xmlns" || (a.prefix == "" && a.local == "xmlns") {
			continue // declarations are consumed, not surfaced
		}
		space := ""
		if a.prefix != "" {
			space = p.lookup(a.prefix)
		}
		val, ok := p.cleanValue(a)
		if !ok {
			return nil, false
		}
		e.SetAttr(xmlutil.QName{Space: space, Local: a.local}, val)
	}
	if selfClosing {
		p.bindings = p.bindings[:nsMark]
		return e, true
	}

	// Content: character data and child elements until the end tag.
	// Text accumulates across children and is trimmed once, matching
	// xmlutil's UnmarshalXML.
	kidMark := len(p.kids)
	text := ""
	var textBuf []byte
	addSeg := func(seg string) {
		switch {
		case seg == "":
		case text == "" && textBuf == nil:
			text = seg
		default:
			if textBuf == nil {
				textBuf = append(textBuf, text...)
			}
			textBuf = append(textBuf, seg...)
		}
	}
	for {
		lt := strings.IndexByte(p.s[p.pos:], '<')
		if lt < 0 {
			return nil, false
		}
		seg, ok := p.textSegment(p.s[p.pos : p.pos+lt])
		if !ok {
			return nil, false
		}
		addSeg(seg)
		p.pos += lt
		if p.pos+1 >= len(p.s) {
			return nil, false
		}
		switch p.s[p.pos+1] {
		case '/':
			p.pos += 2
			if !strings.HasPrefix(p.s[p.pos:], rawName) {
				return nil, false
			}
			p.pos += len(rawName)
			p.skipSpace()
			if p.pos >= len(p.s) || p.s[p.pos] != '>' {
				return nil, false
			}
			p.pos++
			if textBuf != nil {
				text = string(textBuf)
			}
			e.Text = strings.TrimSpace(text)
			if n := len(p.kids) - kidMark; n > 0 {
				e.Children = p.allocPtrs(p.kids[kidMark:])
			}
			p.kids = p.kids[:kidMark]
			p.bindings = p.bindings[:nsMark]
			return e, true
		case '!', '?':
			// Comments, CDATA, DOCTYPE, processing instructions: the
			// fallback path's business.
			return nil, false
		default:
			child, ok := p.element(depth + 1)
			if !ok {
				return nil, false
			}
			p.kids = append(p.kids, child)
		}
	}
}

// textSegment validates and normalizes one run of character data:
// entity references are decoded, raw \r\n / \r become \n (the XML
// line-ending normalization encoding/xml applies), and an unescaped
// "]]>" — a syntax error under encoding/xml — bows out.
func (p *parser) textSegment(seg string) (string, bool) {
	if strings.Contains(seg, "]]>") {
		return "", false
	}
	if strings.IndexByte(seg, '&') < 0 && strings.IndexByte(seg, '\r') < 0 {
		return seg, true
	}
	return decodeText(seg)
}

// attrValue parses a quoted attribute value at the cursor, returning
// the raw substring and whether it needs a rewrite pass.
func (p *parser) attrValue() (val string, dirty bool, ok bool) {
	if p.pos >= len(p.s) {
		return "", false, false
	}
	quote := p.s[p.pos]
	if quote != '"' && quote != '\'' {
		return "", false, false
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.s) {
		switch c := p.s[p.pos]; c {
		case quote:
			val = p.s[start:p.pos]
			p.pos++
			return val, dirty, true
		case '<':
			return "", false, false // as encoding/xml: unescaped < in value
		case '&', '\r':
			dirty = true
		}
		p.pos++
	}
	return "", false, false
}

func (p *parser) cleanValue(a rawAttr) (string, bool) {
	if !a.dirty {
		return a.value, true
	}
	return decodeText(a.value)
}

// decodeText rewrites entity references and line endings. Only the
// five predefined entities and ASCII-valued character references are
// admitted; anything else falls back.
func decodeText(s string) (string, bool) {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); {
		switch c := s[i]; c {
		case '\r':
			out = append(out, '\n')
			if i++; i < len(s) && s[i] == '\n' {
				i++
			}
		case '&':
			semi := strings.IndexByte(s[i:], ';')
			if semi < 0 || semi > 10 {
				return "", false
			}
			r, ok := decodeEntity(s[i+1 : i+semi])
			if !ok {
				return "", false
			}
			out = append(out, r)
			i += semi + 1
		default:
			out = append(out, c)
			i++
		}
	}
	return string(out), true
}

func decodeEntity(name string) (byte, bool) {
	switch name {
	case "amp":
		return '&', true
	case "lt":
		return '<', true
	case "gt":
		return '>', true
	case "apos":
		return '\'', true
	case "quot":
		return '"', true
	}
	if len(name) < 2 || name[0] != '#' {
		return 0, false
	}
	digits, base := name[1:], 10
	if digits[0] == 'x' { // encoding/xml only honours lowercase x
		digits, base = digits[1:], 16
	}
	if digits == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(digits); i++ {
		d := digitVal(digits[i], base)
		if d < 0 {
			return 0, false
		}
		if n = n*base + d; n > 0x7F {
			return 0, false // non-ASCII reference: fallback
		}
	}
	if n < 0x20 && n != '\t' && n != '\n' && n != '\r' {
		return 0, false
	}
	return byte(n), true
}

func digitVal(c byte, base int) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case base == 16 && c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case base == 16 && c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
