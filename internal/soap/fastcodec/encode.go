// Package fastcodec is a hand-rolled, allocation-lean codec for the
// fixed XML shapes the testbed exchanges on every hop: SOAP envelopes,
// WS-Addressing headers and the element trees inside them. The
// encoding/xml codec under the original path builds a token stream,
// consults reflection-driven machinery and re-declares namespaces on
// every element; profile E1 shows that floor dominating the per-call
// CPU of every service. The fast path appends bytes directly into the
// caller's buffer (encode) and tokenizes envelope bytes directly into
// xmlutil.Element trees with slab-allocated nodes and zero-copy text
// extraction (decode).
//
// Correctness is never bet on the fast path: both directions recognize
// only a conservative subset of XML — ASCII documents, ordinary
// elements/attributes/character data, the five predefined entities and
// numeric character references. Anything else (CDATA, comments,
// processing instructions past the prolog, DOCTYPE, non-ASCII text,
// exotic names) makes the codec report ok=false and the caller falls
// back to the encoding/xml path, which keeps the observable behaviour
// byte-for-semantics identical. FuzzCodecEquivalence enforces exactly
// that agreement against encoding/xml.
package fastcodec

import (
	"sort"
	"sync/atomic"

	"uvacg/internal/xmlutil"
)

// disabled turns every caller's fast path off at runtime (the
// -nofastcodec escape hatch); callers gate on Enabled so one switch
// covers envelope marshalling and resource blob codecs alike.
var disabled atomic.Bool

// SetEnabled toggles the fast path process-wide.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether callers should attempt the fast path.
func Enabled() bool { return !disabled.Load() }

// xmlNamespace is the predeclared namespace bound to the "xml" prefix.
const xmlNamespace = "http://www.w3.org/XML/1998/namespace"

// maxDepth bounds encoder/decoder recursion. Deeper documents fall
// back to encoding/xml rather than risking the fast path's stack.
const maxDepth = 512

// Header is the document prolog the envelope encoder emits, identical
// to encoding/xml's xml.Header.
const Header = `<?xml version="1.0" encoding="UTF-8"?>` + "\n"

// AppendElement appends the XML serialization of e to dst and reports
// whether the tree was inside the fast path's recognized shape. On
// ok=false dst is returned unchanged and the caller must fall back to
// the encoding/xml path. The serialization is semantically equivalent
// to encoding/xml's rendering of xmlutil.Element (canonical sorted
// attributes), but elides redundant namespace re-declarations.
func AppendElement(dst []byte, e *xmlutil.Element) ([]byte, bool) {
	start := len(dst)
	enc := encoder{dst: dst}
	if !enc.element(e, "", 0) {
		return dst[:start], false
	}
	return enc.dst, true
}

// AppendEnvelope appends a full SOAP envelope document — prolog,
// Envelope/Header/Body wrappers in ns, the given header blocks and the
// body element — without materializing the wrapper elements. A nil
// body yields an empty Body, the wire form of a void response.
func AppendEnvelope(dst []byte, ns string, headers []*xmlutil.Element, body *xmlutil.Element) ([]byte, bool) {
	start := len(dst)
	enc := encoder{dst: dst}
	enc.dst = append(enc.dst, Header...)
	enc.dst = append(enc.dst, "<Envelope xmlns=\""...)
	if !enc.escaped(ns) {
		return dst[:start], false
	}
	enc.dst = append(enc.dst, '"', '>')
	if len(headers) > 0 {
		enc.dst = append(enc.dst, "<Header>"...)
		for _, h := range headers {
			if !enc.element(h, ns, 1) {
				return dst[:start], false
			}
		}
		enc.dst = append(enc.dst, "</Header>"...)
	}
	enc.dst = append(enc.dst, "<Body>"...)
	if body != nil {
		if !enc.element(body, ns, 1) {
			return dst[:start], false
		}
	}
	enc.dst = append(enc.dst, "</Body></Envelope>"...)
	return enc.dst, true
}

type encoder struct {
	dst []byte
	// attrSpaces interns the namespaces of qualified attributes seen so
	// far; index i is declared as prefix "a<i>" on every element that
	// uses it (ancestor declarations cannot be assumed in scope across
	// sibling subtrees).
	attrSpaces []string
}

// element appends one element tree. parentNS is the default namespace
// in scope, so xmlns is emitted only where it changes.
func (enc *encoder) element(e *xmlutil.Element, parentNS string, depth int) bool {
	if e == nil || depth > maxDepth || !validLocal(e.Name.Local) {
		return false
	}
	enc.dst = append(enc.dst, '<')
	enc.dst = append(enc.dst, e.Name.Local...)
	if e.Name.Space != parentNS {
		if e.Name.Space == "" {
			// encoding/xml never emits xmlns="", so a no-namespace child
			// under a namespaced parent silently inherits the parent's
			// namespace on its round trip. Emitting the undeclaration here
			// would be *more* faithful than the reference path — i.e. a
			// behaviour change — so such trees take the fallback instead.
			return false
		}
		enc.dst = append(enc.dst, ` xmlns="`...)
		if !enc.escaped(e.Name.Space) {
			return false
		}
		enc.dst = append(enc.dst, '"')
	}
	if len(e.Attrs) > 0 && !enc.attrs(e.Attrs) {
		return false
	}
	enc.dst = append(enc.dst, '>')
	if e.Text != "" && !enc.escaped(e.Text) {
		return false
	}
	for _, c := range e.Children {
		if !enc.element(c, e.Name.Space, depth+1) {
			return false
		}
	}
	enc.dst = append(enc.dst, '<', '/')
	enc.dst = append(enc.dst, e.Name.Local...)
	enc.dst = append(enc.dst, '>')
	return true
}

// attrs appends the attribute list in canonical (Space, Local) order,
// matching the deterministic ordering of xmlutil's MarshalXML.
func (enc *encoder) attrs(attrs map[xmlutil.QName]string) bool {
	var arr [8]xmlutil.QName
	keys := arr[:0]
	if len(attrs) > len(arr) {
		keys = make([]xmlutil.QName, 0, len(attrs))
	}
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Space != keys[j].Space {
			return keys[i].Space < keys[j].Space
		}
		return keys[i].Local < keys[j].Local
	})
	// Sorted order clusters equal spaces, so one declaration per run.
	declared := ""
	for _, k := range keys {
		if !validLocal(k.Local) || k.Local == "xmlns" {
			return false
		}
		enc.dst = append(enc.dst, ' ')
		switch {
		case k.Space == "":
		case k.Space == xmlNamespace:
			enc.dst = append(enc.dst, "xml:"...)
		case k.Space == "xmlns":
			// A QName in the reserved xmlns pseudo-namespace would encode
			// as a namespace declaration, changing semantics.
			return false
		default:
			p := enc.prefixFor(k.Space)
			if k.Space != declared {
				enc.dst = append(enc.dst, "xmlns:"...)
				enc.dst = append(enc.dst, p...)
				enc.dst = append(enc.dst, '=', '"')
				if !enc.escaped(k.Space) {
					return false
				}
				enc.dst = append(enc.dst, '"', ' ')
				declared = k.Space
			}
			enc.dst = append(enc.dst, p...)
			enc.dst = append(enc.dst, ':')
		}
		enc.dst = append(enc.dst, k.Local...)
		enc.dst = append(enc.dst, '=', '"')
		if !enc.escaped(attrs[k]) {
			return false
		}
		enc.dst = append(enc.dst, '"')
	}
	return true
}

// attrPrefixes are the interned prefixes for qualified attributes; the
// table covers every realistic document (a ninth distinct attribute
// namespace allocates).
var attrPrefixes = [8]string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"}

func (enc *encoder) prefixFor(space string) string {
	for i, s := range enc.attrSpaces {
		if s == space {
			if i < len(attrPrefixes) {
				return attrPrefixes[i]
			}
			return "a" + itoa(i)
		}
	}
	enc.attrSpaces = append(enc.attrSpaces, space)
	i := len(enc.attrSpaces) - 1
	if i < len(attrPrefixes) {
		return attrPrefixes[i]
	}
	return "a" + itoa(i)
}

func itoa(i int) string {
	var buf [20]byte
	pos := len(buf)
	for {
		pos--
		buf[pos] = byte('0' + i%10)
		if i /= 10; i == 0 {
			break
		}
	}
	return string(buf[pos:])
}

// escaped appends s with the exact escaping encoding/xml's EscapeText
// applies to the characters the fast path admits, and fails on anything
// outside printable ASCII plus tab/newline/carriage-return — those
// strings take the fallback path where encoding/xml's own replacement
// rules apply.
func (enc *encoder) escaped(s string) bool {
	last := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		var esc string
		switch c {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '"':
			esc = "&#34;"
		case '\'':
			esc = "&#39;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			if c < 0x20 || c >= 0x7F {
				return false
			}
			continue
		}
		enc.dst = append(enc.dst, s[last:i]...)
		enc.dst = append(enc.dst, esc...)
		last = i + 1
	}
	enc.dst = append(enc.dst, s[last:]...)
	return true
}

// validLocal admits conservative ASCII element/attribute local names:
// a letter or underscore followed by letters, digits, '_', '-' or '.'.
// Everything else — including prefixed locals — falls back.
func validLocal(s string) bool {
	if s == "" || !isNameStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isNameByte(s[i]) {
			return false
		}
	}
	return true
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isNameByte(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.'
}
