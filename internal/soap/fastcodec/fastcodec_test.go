package fastcodec

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"uvacg/internal/xmlutil"
)

// sampleTree builds a realistic WS-Addressing-flavoured element tree.
func sampleTree() *xmlutil.Element {
	wsa := "http://www.w3.org/2005/08/addressing"
	fss := "urn:uvacg:fss"
	body := xmlutil.NewContainer(xmlutil.Q(fss, "Upload"))
	body.SetAttr(xmlutil.Q("", "mode"), "create")
	body.SetAttr(xmlutil.Q(wsa, "IsReferenceParameter"), "true")
	body.Append(
		xmlutil.NewElement(xmlutil.Q(fss, "Path"), "/scratch/job-42/input.dat"),
		xmlutil.NewElement(xmlutil.Q(fss, "Offset"), "1048576"),
		xmlutil.NewContainer(xmlutil.Q(fss, "Meta"),
			xmlutil.NewElement(xmlutil.Q(fss, "Checksum"), "a1b2c3&d4<e5>"),
			xmlutil.NewElement(xmlutil.Q(fss, "Owner"), `alice "the admin"`),
		),
	)
	return body
}

// xmlRoundTrip pushes a tree through the encoding/xml reference path.
func xmlRoundTrip(t *testing.T, e *xmlutil.Element) *xmlutil.Element {
	t.Helper()
	data, err := xmlutil.MarshalElement(e)
	if err != nil {
		t.Fatalf("reference marshal: %v", err)
	}
	out, err := xmlutil.UnmarshalElement(data)
	if err != nil {
		t.Fatalf("reference unmarshal: %v", err)
	}
	return out
}

func TestAppendElementMatchesEncodingXML(t *testing.T) {
	tree := sampleTree()
	fast, ok := AppendElement(nil, tree)
	if !ok {
		t.Fatal("fast encode refused a recognized tree")
	}
	// The fast bytes must decode — via the reference decoder — to the
	// same infoset the reference encoder round-trips to.
	got, err := xmlutil.UnmarshalElement(fast)
	if err != nil {
		t.Fatalf("encoding/xml rejected fast output %q: %v", fast, err)
	}
	want := xmlRoundTrip(t, tree)
	if !got.Equal(want) {
		t.Fatalf("fast encode diverges:\n fast: %s\n want: %s", got, want)
	}
}

func TestDecodeMatchesEncodingXML(t *testing.T) {
	docs := []string{
		`<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Header><Action xmlns="http://www.w3.org/2005/08/addressing">urn:op</Action></Header><Body><Run xmlns="urn:x"><Arg>a &amp; b</Arg><Arg>second</Arg></Run></Body></Envelope>`,
		`<a><b c="1" d="2&#xA;3">text</b>  padded  </a>`,
		`<p:root xmlns:p="urn:p" p:own="v"><p:kid/></p:root>`,
		`<r xmlns="u1"><k xmlns=""><deep xmlns="u2">x</deep></k></r>`,
		`<?xml version="1.0" encoding="UTF-8"?>` + "\n" + `<ok attr='si&#39;ngle'/>`,
		`<m>line1` + "\r\n" + `line2` + "\r" + `line3</m>`,
		`<u undeclared:x="1"><xml:lang xml:space="preserve"/></u>`,
		`<dup a="1" a="2"/>`,
		`<ws>   </ws>`,
	}
	for _, doc := range docs {
		fast, ok := Decode([]byte(doc))
		if !ok {
			t.Errorf("fast decode refused %q", doc)
			continue
		}
		want, err := xmlutil.UnmarshalElement([]byte(doc))
		if err != nil {
			t.Errorf("fast decode accepted %q but encoding/xml errors: %v", doc, err)
			continue
		}
		if !fast.Equal(want) {
			t.Errorf("decode diverges on %q:\n fast: %s\n want: %s", doc, fast, want)
		}
	}
}

func TestDecodeFallsBackOutsideRecognizedShape(t *testing.T) {
	docs := []string{
		`<a><![CDATA[raw]]></a>`,       // CDATA
		`<a><!-- comment --></a>`,      // comments
		`<a><?pi data?></a>`,           // PI past the prolog
		`<a>caf` + "\xc3\xa9" + `</a>`, // non-ASCII
		`<a>&unknown;</a>`,             // undefined entity
		`<a b="un<escaped"/>`,          // literal < in attr value
		`<a>]]&gt;ok but ]]> not</a>`,  // raw ]]> in char data
		`<a><b></a></b>`,               // mismatched end tags
		`<a`,                           // truncated
		``,                             // empty
		`<!DOCTYPE a><a/>`,             // doctype
		`<a ` + "\x00" + `="1"/>`,      // NUL byte
		strings.Repeat(`<d>`, 600) + strings.Repeat(`</d>`, 600), // too deep
	}
	for _, doc := range docs {
		if _, ok := Decode([]byte(doc)); ok {
			t.Errorf("fast decode accepted out-of-shape input %q", doc)
		}
	}
}

func TestDecodeRoundTripsFastEncode(t *testing.T) {
	tree := sampleTree()
	fast, ok := AppendElement(nil, tree)
	if !ok {
		t.Fatal("fast encode refused sample tree")
	}
	got, ok := Decode(fast)
	if !ok {
		t.Fatalf("fast decode refused fast-encoded bytes %q", fast)
	}
	want := xmlRoundTrip(t, tree)
	if !got.Equal(want) {
		t.Fatalf("fast round trip diverges:\n got: %s\n want: %s", got, want)
	}
}

func TestAppendEnvelopeMatchesWrapperTree(t *testing.T) {
	const ns = "http://www.w3.org/2003/05/soap-envelope"
	wsa := "http://www.w3.org/2005/08/addressing"
	headers := []*xmlutil.Element{
		xmlutil.NewElement(xmlutil.Q(wsa, "Action"), "urn:uvacg:fss/Upload"),
		xmlutil.NewElement(xmlutil.Q(wsa, "MessageID"), "urn:uuid:1234"),
	}
	body := sampleTree()

	fast, ok := AppendEnvelope(nil, ns, headers, body)
	if !ok {
		t.Fatal("fast envelope encode refused recognized input")
	}
	if !bytes.HasPrefix(fast, []byte(Header)) {
		t.Fatalf("envelope missing prolog: %q", fast[:40])
	}

	// Reference form: materialize the wrapper tree and push it through
	// encoding/xml, then compare decoded infosets.
	env := xmlutil.NewContainer(xmlutil.Q(ns, "Envelope"),
		xmlutil.NewContainer(xmlutil.Q(ns, "Header"), headers...),
		xmlutil.NewContainer(xmlutil.Q(ns, "Body"), body))
	refBytes, err := xmlutil.MarshalElement(env)
	if err != nil {
		t.Fatalf("reference marshal: %v", err)
	}
	want, err := xmlutil.UnmarshalElement(refBytes)
	if err != nil {
		t.Fatalf("reference unmarshal: %v", err)
	}
	got, err := xmlutil.UnmarshalElement(fast)
	if err != nil {
		t.Fatalf("encoding/xml rejected fast envelope %q: %v", fast, err)
	}
	if !got.Equal(want) {
		t.Fatalf("fast envelope diverges:\n got: %s\n want: %s", got, want)
	}
}

func TestAppendEnvelopeEmptyBody(t *testing.T) {
	const ns = "http://www.w3.org/2003/05/soap-envelope"
	fast, ok := AppendEnvelope(nil, ns, nil, nil)
	if !ok {
		t.Fatal("fast envelope encode refused empty envelope")
	}
	got, err := xmlutil.UnmarshalElement(fast)
	if err != nil {
		t.Fatalf("encoding/xml rejected empty fast envelope: %v", err)
	}
	if got.Name != xmlutil.Q(ns, "Envelope") || len(got.Children) != 1 ||
		got.Children[0].Name != xmlutil.Q(ns, "Body") || len(got.Children[0].Children) != 0 {
		t.Fatalf("unexpected empty-envelope shape: %s", got)
	}
}

func TestEncodeFallsBackOutsideRecognizedShape(t *testing.T) {
	cases := map[string]*xmlutil.Element{
		"non-ascii text":   xmlutil.NewElement(xmlutil.Q("", "a"), "café"),
		"control text":     xmlutil.NewElement(xmlutil.Q("", "a"), "x\x01y"),
		"bad local":        xmlutil.NewElement(xmlutil.Q("", "bad name"), ""),
		"empty local":      xmlutil.NewElement(xmlutil.Q("", ""), ""),
		"prefixed local":   xmlutil.NewElement(xmlutil.Q("", "p:a"), ""),
		"xmlns attr":       xmlutil.NewElement(xmlutil.Q("", "a"), "").SetAttr(xmlutil.Q("", "xmlns"), "urn:x"),
		"xmlns-space attr": xmlutil.NewElement(xmlutil.Q("", "a"), "").SetAttr(xmlutil.Q("xmlns", "p"), "urn:x"),
		// encoding/xml cannot undeclare a default namespace, so the fast
		// path must not invent xmlns="" for a no-namespace child.
		"empty-ns child under ns parent": xmlutil.NewContainer(xmlutil.Q("urn:x", "a"),
			xmlutil.NewElement(xmlutil.Q("", "plain"), "t")),
		"nil": nil,
	}
	for name, tree := range cases {
		if _, ok := AppendElement(nil, tree); ok {
			t.Errorf("%s: fast encode accepted out-of-shape tree", name)
		}
	}
	deep := xmlutil.NewElement(xmlutil.Q("", "leaf"), "")
	for i := 0; i < 600; i++ {
		deep = xmlutil.NewContainer(xmlutil.Q("", "wrap"), deep)
	}
	if _, ok := AppendElement(nil, deep); ok {
		t.Error("fast encode accepted over-deep tree")
	}
}

// TestEncodeManyAttrSpaces exercises prefix interning past the static
// table.
func TestEncodeManyAttrSpaces(t *testing.T) {
	e := xmlutil.NewElement(xmlutil.Q("", "a"), "")
	for _, sp := range []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9"} {
		e.SetAttr(xmlutil.Q("urn:"+sp, "k"), sp)
	}
	fast, ok := AppendElement(nil, e)
	if !ok {
		t.Fatal("fast encode refused many-space tree")
	}
	got, err := xmlutil.UnmarshalElement(fast)
	if err != nil {
		t.Fatalf("encoding/xml rejected fast output: %v", err)
	}
	if !got.Equal(xmlRoundTrip(t, e)) {
		t.Fatalf("many-space encode diverges: %s", got)
	}
}

// TestDecodeTrailingContentIgnored mirrors xml.Unmarshal, which stops
// reading at the root's end element.
func TestDecodeTrailingContentIgnored(t *testing.T) {
	doc := `<a>x</a> trailing <garbage`
	fast, ok := Decode([]byte(doc))
	if !ok {
		t.Fatal("fast decode refused doc with trailing content")
	}
	var want xmlutil.Element
	if err := xml.Unmarshal([]byte(doc), &want); err != nil {
		t.Fatalf("encoding/xml rejected it too: %v", err)
	}
	if !fast.Equal(&want) {
		t.Fatalf("diverges: %s vs %s", fast, &want)
	}
}
