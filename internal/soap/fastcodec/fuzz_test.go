package fastcodec

import (
	"testing"

	"uvacg/internal/xmlutil"
)

// FuzzCodecEquivalence is the differential contract of the fast path:
// whenever Decode accepts a document, the encoding/xml reference path
// must accept it too and produce an Equal tree; and whenever
// AppendElement accepts the decoded tree, the reference decoder must
// read the fast bytes back to the same tree. ok=false is always
// allowed — it just routes the document to the fallback — so the fuzz
// only has to prove the fast path never *disagrees*.
func FuzzCodecEquivalence(f *testing.F) {
	// Captured wire envelopes from the services (scheduler submit,
	// WS-Addressing headers, notification delivery, resource property
	// responses, faults) plus shape-stressing constructions.
	seeds := []string{
		`<?xml version="1.0" encoding="UTF-8"?>` + "\n" + `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Header><Action xmlns="http://www.w3.org/2005/08/addressing">http://uvacg/scheduler/Submit</Action><To xmlns="http://www.w3.org/2005/08/addressing">soap.tcp://127.0.0.1:9601/scheduler</To><MessageID xmlns="http://www.w3.org/2005/08/addressing">urn:uuid:7f2c</MessageID><ResourceID xmlns="http://uvacg/wsrf" IsReferenceParameter="true">jobset-42</ResourceID></Header><Body><Submit xmlns="http://uvacg/scheduler"><Document>&lt;JobSet&gt;&lt;/JobSet&gt;</Document></Submit></Body></Envelope>`,
		`<?xml version="1.0" encoding="UTF-8"?>` + "\n" + `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body><Notify xmlns="http://docs.oasis-open.org/wsn/b-2"><NotificationMessage><Topic Dialect="http://docs.oasis-open.org/wsn/t-1/TopicExpression/Simple">jobset-42/changed</Topic><Message><JobStatus xmlns="http://uvacg/scheduler"><Name>render-1</Name><State>Finished</State><Exit>0</Exit></JobStatus></Message></NotificationMessage></Notify></Body></Envelope>`,
		`<?xml version="1.0" encoding="UTF-8"?>` + "\n" + `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body><Fault><Code><Value>Sender</Value></Code><Reason><Text xml:lang="en">wrong shard: jobset maps to shard 3</Text></Reason><Detail><WrongShard xmlns="http://uvacg/scheduler" Shard="3"><Owner>soap.tcp://10.0.0.2:9601/scheduler</Owner></WrongShard></Detail></Fault></Body></Envelope>`,
		`<GetResourcePropertyResponse xmlns="http://docs.oasis-open.org/wsrf/rp-2"><Utilization xmlns="http://uvacg/nis">0.25</Utilization></GetResourcePropertyResponse>`,
		`<a b="1" c="&amp;x" xmlns:p="urn:p" p:d="q&#xA;r">mixed <b>child</b> tail</a>`,
		`<r xmlns="u1"><k xmlns="">plain<deep xmlns="u2">x</deep></k></r>`,
		`<m>cr` + "\r\n" + `lf` + "\r" + `solo</m>`,
		`<dup a='1' a="2"/>`,
		`<a><![CDATA[fallback]]></a>`,
		`<a>&unknown;</a>`,
		`<a>]]></a>`,
		"<a>caf\xc3\xa9</a>",
		`<u undeclared:x="1" xml:space="preserve"/>`,
		`<!DOCTYPE x><x/>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fast, ok := Decode(data)
		if !ok {
			return // fallback path owns the document
		}
		ref, err := xmlutil.UnmarshalElement(data)
		if err != nil {
			t.Fatalf("fast decode accepted %q but encoding/xml rejects it: %v", data, err)
		}
		if !fast.Equal(ref) {
			t.Fatalf("decode disagrees on %q:\n fast: %s\n ref:  %s", data, fast, ref)
		}
		enc, ok := AppendElement(nil, fast)
		if !ok {
			return
		}
		back, err := xmlutil.UnmarshalElement(enc)
		if err != nil {
			t.Fatalf("encoding/xml rejects fast encoding %q of %q: %v", enc, data, err)
		}
		if !back.Equal(fast) {
			t.Fatalf("encode round trip disagrees on %q:\n bytes: %q\n back: %s\n tree: %s", data, enc, back, fast)
		}
		again, ok := Decode(enc)
		if !ok {
			t.Fatalf("fast decode refuses fast encoding %q of %q", enc, data)
		}
		if !again.Equal(fast) {
			t.Fatalf("fast re-decode disagrees on %q: %s vs %s", enc, again, fast)
		}
	})
}
