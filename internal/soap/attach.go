package soap

import (
	"encoding/base64"
	"fmt"
	"strings"

	"uvacg/internal/xmlutil"
)

// NSXOP is the XOP include namespace: the body element that stands in
// for binary content externalized into an attachment, exactly the
// MTOM/XOP shape WSE-era bindings used to escape base64 inflation.
const NSXOP = "http://www.w3.org/2004/08/xop/include"

var (
	qInclude = xmlutil.Q(NSXOP, "Include")
	qHref    = xmlutil.Q("", "href")
)

// Attachment is one binary part riding outside the XML envelope. On
// bindings with attachment support (soap.tcp v2 frames, inproc) the
// bytes travel raw; on others they are inlined back into the body as
// base64 text before marshalling (InlineAttachments).
type Attachment struct {
	ID   string
	Data []byte
}

// cidRef renders an attachment id as the href of its include element.
func cidRef(id string) string { return "cid:" + id }

// IncludeElement builds the <xop:Include href="cid:id"/> element that
// references an attachment from the body.
func IncludeElement(id string) *xmlutil.Element {
	e := &xmlutil.Element{Name: qInclude}
	e.SetAttr(qHref, cidRef(id))
	return e
}

// NextAttachmentID allocates an id unique within a growing attachment
// list (shared by Envelope.Attach and server-side collectors that build
// the list before the reply envelope exists).
func NextAttachmentID(list []Attachment) string {
	return fmt.Sprintf("att-%d", len(list)+1)
}

// Attach externalizes data as an attachment of the envelope and returns
// the include element to place where the base64 text would have gone.
// The data is held by reference; callers must not mutate it afterwards.
func (e *Envelope) Attach(data []byte) *xmlutil.Element {
	id := NextAttachmentID(e.Attachments)
	e.Attachments = append(e.Attachments, Attachment{ID: id, Data: data})
	return IncludeElement(id)
}

// HasAttachments reports whether any parts ride outside the envelope.
func (e *Envelope) HasAttachments() bool { return len(e.Attachments) > 0 }

// AttachmentData returns the named attachment's bytes.
func (e *Envelope) AttachmentData(id string) ([]byte, bool) {
	for i := range e.Attachments {
		if e.Attachments[i].ID == id {
			return e.Attachments[i].Data, true
		}
	}
	return nil, false
}

// ContentBytes decodes the binary content of el in either wire form: an
// <xop:Include> child resolving to an attachment of the envelope, or
// inline base64 character data. A nil el yields empty content (the
// historical behaviour of decoding an absent element's text); a nil
// receiver forces the inline path, for callers holding only a body.
func (e *Envelope) ContentBytes(el *xmlutil.Element) ([]byte, error) {
	if el == nil {
		return nil, nil
	}
	if e != nil {
		if inc := el.Child(qInclude); inc != nil {
			id := strings.TrimPrefix(inc.Attr(qHref), "cid:")
			data, ok := e.AttachmentData(id)
			if !ok {
				return nil, fmt.Errorf("soap: include references missing attachment %q", id)
			}
			return data, nil
		}
	}
	return base64.StdEncoding.DecodeString(el.Text)
}

// InlineAttachments rewrites the envelope for bindings without
// attachment support: every include element is replaced by the base64
// text of the attachment it references, and the attachment list is
// cleared. Unreferenced attachments are dropped (nothing in the body
// points at them). Safe to call on envelopes without attachments.
func (e *Envelope) InlineAttachments() {
	if len(e.Attachments) == 0 {
		return
	}
	for _, h := range e.Headers {
		e.inlineInto(h)
	}
	e.inlineInto(e.Body)
	e.Attachments = nil
}

func (e *Envelope) inlineInto(el *xmlutil.Element) {
	if el == nil {
		return
	}
	kept := el.Children[:0]
	for _, c := range el.Children {
		if c.Name == qInclude {
			id := strings.TrimPrefix(c.Attr(qHref), "cid:")
			if data, ok := e.AttachmentData(id); ok {
				el.Text = base64.StdEncoding.EncodeToString(data)
				continue // drop the include element
			}
		}
		e.inlineInto(c)
		kept = append(kept, c)
	}
	el.Children = kept
}
