package soap

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// HandlerFunc processes one SOAP request envelope and produces a reply.
// A (nil, nil) return is the empty response to a void method; one-way
// messages never have their return delivered (the transport has already
// closed the connection, per the paper's distinction between one-way
// messages and void-returning methods).
type HandlerFunc func(ctx context.Context, req *Envelope) (*Envelope, error)

// Dispatcher routes envelopes to handlers by WS-Addressing action URI.
// It is the Go analog of the ASP.NET dispatch step in WSRF.NET's wrapper
// service (paper Fig. 1): one dispatcher per hosted service. Per-service
// cross-cutting layers (security verification, logging) are Interceptors
// installed with Use — the same pipeline type transport clients and
// servers compose.
type Dispatcher struct {
	mu       sync.RWMutex
	handlers map[string]HandlerFunc
	chain    Chain
}

// NewDispatcher creates an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[string]HandlerFunc)}
}

// Use appends interceptors to the dispatcher's pipeline. Interceptors
// registered earlier run outermost.
func (d *Dispatcher) Use(ics ...Interceptor) {
	d.chain.Use(ics...)
}

// Register binds an action URI to a handler. Registering a duplicate
// action panics: port-type composition bugs should fail at wiring time,
// not be discovered as silently shadowed methods.
func (d *Dispatcher) Register(action string, h HandlerFunc) {
	if action == "" {
		panic("soap: Register with empty action")
	}
	if h == nil {
		panic("soap: Register with nil handler for " + action)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.handlers[action]; dup {
		panic("soap: duplicate handler for action " + action)
	}
	d.handlers[action] = h
}

// Actions returns the registered action URIs, sorted.
func (d *Dispatcher) Actions() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.handlers))
	for a := range d.handlers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Handles reports whether an action is registered.
func (d *Dispatcher) Handles(action string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.handlers[action]
	return ok
}

// Dispatch routes a request to the handler for action, running the
// interceptor chain around it. Unknown actions yield a Sender fault.
func (d *Dispatcher) Dispatch(ctx context.Context, action string, req *Envelope) (*Envelope, error) {
	return d.DispatchCall(ctx, &CallInfo{Side: ServerSide, Action: action, Request: req})
}

// DispatchCall is Dispatch for an already-described call: the transport
// server builds the CallInfo (with path and one-way flag) so the
// dispatcher's interceptors see the same call description the server's
// own pipeline does.
func (d *Dispatcher) DispatchCall(ctx context.Context, call *CallInfo) (*Envelope, error) {
	d.mu.RLock()
	h, ok := d.handlers[call.Action]
	d.mu.RUnlock()
	if !ok {
		return nil, SenderFault("no handler for action %q", call.Action)
	}
	return d.chain.Bind(func(ctx context.Context, call *CallInfo) (*Envelope, error) {
		return h(ctx, call.Request)
	})(ctx, call)
}

// DispatchToEnvelope is Dispatch with errors converted to SOAP fault
// envelopes, the form a transport server sends back on the wire. The
// second return distinguishes a fault reply from a normal one.
func (d *Dispatcher) DispatchToEnvelope(ctx context.Context, action string, req *Envelope) (resp *Envelope, faulted bool) {
	out, err := d.Dispatch(ctx, action, req)
	if err != nil {
		return FaultFromError(err).Envelope(), true
	}
	if out == nil {
		out = &Envelope{} // empty-body void response
	}
	return out, false
}

// Mux routes to one of several dispatchers by service path, letting a
// single listener host many services the way one IIS instance hosts many
// ASP.NET endpoints.
type Mux struct {
	mu       sync.RWMutex
	services map[string]*Dispatcher
}

// NewMux creates an empty Mux.
func NewMux() *Mux { return &Mux{services: make(map[string]*Dispatcher)} }

// Handle binds a service path (e.g. "/FileSystemService") to a
// dispatcher. Duplicate paths panic, as with Register.
func (m *Mux) Handle(path string, d *Dispatcher) {
	if path == "" || path[0] != '/' {
		panic(fmt.Sprintf("soap: service path %q must begin with '/'", path))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.services[path]; dup {
		panic("soap: duplicate service path " + path)
	}
	m.services[path] = d
}

// Lookup finds the dispatcher for a path.
func (m *Mux) Lookup(path string) (*Dispatcher, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.services[path]
	return d, ok
}

// Paths returns the registered service paths, sorted.
func (m *Mux) Paths() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.services))
	for p := range m.services {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
