package soap

import (
	"testing"

	"uvacg/internal/xmlutil"
)

// benchEnvelope is a realistic testbed message: WS-Addressing-shaped
// headers plus a body the size of a typical FSS/ES request.
func benchEnvelope() *Envelope {
	nsA := "http://schemas.xmlsoap.org/ws/2004/03/addressing"
	nsF := "urn:uvacg:fss"
	env := New(xmlutil.NewContainer(xmlutil.Q(nsF, "Upload"),
		xmlutil.NewContainer(xmlutil.Q(nsF, "File"),
			xmlutil.NewElement(xmlutil.Q(nsF, "SourceEPR"), "soap.tcp://client:9999/files"),
			xmlutil.NewElement(xmlutil.Q(nsF, "RemoteName"), "input.dat"),
			xmlutil.NewElement(xmlutil.Q(nsF, "LocalName"), "input.dat"),
		),
		xmlutil.NewElement(xmlutil.Q(nsF, "Token"), "bench-token-0001"),
	))
	env.AddHeader(xmlutil.NewElement(xmlutil.Q(nsA, "To"), "http://node-a:8080/FileSystemService"))
	env.AddHeader(xmlutil.NewElement(xmlutil.Q(nsA, "Action"), nsF+"/Upload"))
	env.AddHeader(xmlutil.NewElement(xmlutil.Q(nsA, "MessageID"), "urn:uuid:00000000-0000-0000-0000-000000000000"))
	return env
}

func BenchmarkEnvelopeMarshal(b *testing.B) {
	env := benchEnvelope()
	data, err := env.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopeUnmarshal(b *testing.B) {
	data, err := benchEnvelope().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
