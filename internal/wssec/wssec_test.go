package wssec

import (
	"context"
	"strings"
	"testing"
	"time"

	"uvacg/internal/soap"
	"uvacg/internal/xmlutil"
)

var qBody = xmlutil.Q("urn:uvacg:test", "Run")

func newEnv() *soap.Envelope { return soap.New(xmlutil.NewElement(qBody, "payload")) }

func TestUsernameTokenPlainRoundTrip(t *testing.T) {
	env := newEnv()
	creds := Credentials{Username: "gridimp", Password: "s3cret"}
	if err := AttachUsernameToken(env, creds, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := soap.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := ExtractToken(back)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Username != "gridimp" || tok.PasswordType != PasswordText {
		t.Fatalf("token = %+v", tok)
	}
	if err := tok.Verify("s3cret"); err != nil {
		t.Fatal(err)
	}
	if err := tok.Verify("wrong"); err == nil {
		t.Fatal("wrong password accepted")
	}
}

func TestUsernameTokenDigest(t *testing.T) {
	env := newEnv()
	if err := AttachUsernameToken(env, Credentials{Username: "u", Password: "pw"}, true, time.Now()); err != nil {
		t.Fatal(err)
	}
	tok, err := ExtractToken(env)
	if err != nil {
		t.Fatal(err)
	}
	if tok.PasswordType != PasswordDigest {
		t.Fatalf("type = %q", tok.PasswordType)
	}
	if tok.Password == "pw" {
		t.Fatal("digest form leaked plaintext password")
	}
	if err := tok.Verify("pw"); err != nil {
		t.Fatal(err)
	}
	if err := tok.Verify("other"); err == nil {
		t.Fatal("wrong password accepted under digest")
	}
}

func TestAttachUsernameTokenReplaces(t *testing.T) {
	env := newEnv()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(AttachUsernameToken(env, Credentials{Username: "a", Password: "1"}, false, time.Now()))
	must(AttachUsernameToken(env, Credentials{Username: "b", Password: "2"}, false, time.Now()))
	tok, err := ExtractToken(env)
	must(err)
	if tok.Username != "b" {
		t.Fatalf("stale token survived: %+v", tok)
	}
	n := 0
	for _, h := range env.Headers {
		if h.Name == qSecurity {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d security headers", n)
	}
}

func TestAttachRequiresUsername(t *testing.T) {
	if err := AttachUsernameToken(newEnv(), Credentials{}, false, time.Now()); err == nil {
		t.Fatal("empty username accepted")
	}
}

func TestExtractTokenErrors(t *testing.T) {
	if _, err := ExtractToken(newEnv()); err == nil {
		t.Fatal("no header should error")
	}
	env := newEnv()
	env.AddHeader(xmlutil.NewContainer(qSecurity))
	if _, err := ExtractToken(env); err == nil {
		t.Fatal("empty security header should error")
	}
}

func TestEncryptDecryptSecurityHeader(t *testing.T) {
	service, err := NewIdentity("CN=ExecutionService/node-a")
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv()
	creds := Credentials{Username: "labuser", Password: "hunter2"}
	if err := AttachUsernameToken(env, creds, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := EncryptSecurityHeader(env, service.Certificate()); err != nil {
		t.Fatal(err)
	}
	if !HasEncryptedHeader(env) {
		t.Fatal("no encrypted header present")
	}
	// Credentials must be opaque on the wire.
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "hunter2") || strings.Contains(string(data), "labuser") {
		t.Fatal("credentials leaked in ciphertext envelope")
	}
	if _, err := ExtractToken(env); err == nil {
		t.Fatal("token readable while encrypted")
	}

	back, err := soap.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecryptSecurityHeader(back, service); err != nil {
		t.Fatal(err)
	}
	tok, err := ExtractToken(back)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Username != "labuser" || tok.Verify("hunter2") != nil {
		t.Fatalf("token corrupted: %+v", tok)
	}
}

func TestDecryptWithWrongIdentityFails(t *testing.T) {
	right, _ := NewIdentity("CN=right")
	wrong, _ := NewIdentity("CN=wrong")
	env := newEnv()
	if err := AttachUsernameToken(env, Credentials{Username: "u", Password: "p"}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := EncryptSecurityHeader(env, right.Certificate()); err != nil {
		t.Fatal(err)
	}
	if err := DecryptSecurityHeader(env, wrong); err == nil {
		t.Fatal("decryption with wrong identity succeeded")
	}
}

func TestEncryptWithoutHeaderFails(t *testing.T) {
	id, _ := NewIdentity("CN=x")
	if err := EncryptSecurityHeader(newEnv(), id.Certificate()); err == nil {
		t.Fatal("expected error")
	}
	if err := DecryptSecurityHeader(newEnv(), id); err == nil {
		t.Fatal("expected error")
	}
}

func TestReplayCache(t *testing.T) {
	rc := NewReplayCache(time.Minute)
	now := time.Now()
	if err := rc.Check("n1", now, now); err != nil {
		t.Fatal(err)
	}
	if err := rc.Check("n1", now, now); err == nil {
		t.Fatal("replay accepted")
	}
	if err := rc.Check("n2", now.Add(-2*time.Minute), now); err == nil {
		t.Fatal("stale token accepted")
	}
	if err := rc.Check("n3", now.Add(2*time.Minute), now); err == nil {
		t.Fatal("future token accepted")
	}
	if err := rc.Check("n4", time.Time{}, now); err == nil {
		t.Fatal("zero Created accepted")
	}
	// Nonces age out, so a long-running service's cache stays bounded.
	later := now.Add(3 * time.Minute)
	if err := rc.Check("n1", later, later); err != nil {
		t.Fatalf("expired nonce should be reusable: %v", err)
	}
}

func TestCertificateFingerprintStable(t *testing.T) {
	id, _ := NewIdentity("CN=a")
	if id.Certificate().Fingerprint() != id.Certificate().Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
	other, _ := NewIdentity("CN=a")
	if id.Certificate().Fingerprint() == other.Certificate().Fingerprint() {
		t.Fatal("distinct keys share a fingerprint")
	}
}

func TestNewIdentityRequiresSubject(t *testing.T) {
	if _, err := NewIdentity(""); err == nil {
		t.Fatal("empty subject accepted")
	}
}

func okHandler(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
	p, _ := PrincipalFrom(ctx)
	return soap.New(xmlutil.NewElement(qBody, p.Username)), nil
}

// bind adapts an interceptor plus leaf handler into the plain
// envelope-handler shape the tests drive directly.
func bind(ic soap.Interceptor, h soap.HandlerFunc) soap.HandlerFunc {
	return func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		call := &soap.CallInfo{Side: soap.ServerSide, Request: req}
		return ic(ctx, call, func(ctx context.Context, call *soap.CallInfo) (*soap.Envelope, error) {
			return h(ctx, call.Request)
		})
	}
}

func TestMiddlewareAuthenticates(t *testing.T) {
	service, _ := NewIdentity("CN=ES")
	accounts := StaticAccounts{"labuser": "pw"}
	ic := Interceptor(VerifierConfig{
		Identity: service,
		Accounts: accounts,
		Replay:   NewReplayCache(time.Minute),
		Required: true,
	})
	h := bind(ic, okHandler)

	env := newEnv()
	if err := AttachUsernameToken(env, Credentials{Username: "labuser", Password: "pw"}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := EncryptSecurityHeader(env, service.Certificate()); err != nil {
		t.Fatal(err)
	}
	resp, err := h(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body.Text != "labuser" {
		t.Fatalf("principal = %q", resp.Body.Text)
	}
}

func TestMiddlewareRejections(t *testing.T) {
	service, _ := NewIdentity("CN=ES")
	accounts := StaticAccounts{"u": "pw"}
	h := bind(Interceptor(VerifierConfig{Identity: service, Accounts: accounts, Required: true}), okHandler)
	ctx := context.Background()

	t.Run("missing header", func(t *testing.T) {
		if _, err := h(ctx, newEnv()); err == nil {
			t.Fatal("unauthenticated request accepted")
		}
	})
	t.Run("unknown account", func(t *testing.T) {
		env := newEnv()
		if err := AttachUsernameToken(env, Credentials{Username: "ghost", Password: "x"}, false, time.Now()); err != nil {
			t.Fatal(err)
		}
		if _, err := h(ctx, env); err == nil {
			t.Fatal("unknown account accepted")
		}
	})
	t.Run("wrong password", func(t *testing.T) {
		env := newEnv()
		if err := AttachUsernameToken(env, Credentials{Username: "u", Password: "bad"}, true, time.Now()); err != nil {
			t.Fatal(err)
		}
		if _, err := h(ctx, env); err == nil {
			t.Fatal("wrong password accepted")
		}
	})
	t.Run("replay", func(t *testing.T) {
		hR := bind(Interceptor(VerifierConfig{Accounts: accounts, Replay: NewReplayCache(time.Minute), Required: true}), okHandler)
		env := newEnv()
		if err := AttachUsernameToken(env, Credentials{Username: "u", Password: "pw"}, true, time.Now()); err != nil {
			t.Fatal(err)
		}
		if _, err := hR(ctx, env.Clone()); err != nil {
			t.Fatalf("first use rejected: %v", err)
		}
		if _, err := hR(ctx, env.Clone()); err == nil {
			t.Fatal("replayed envelope accepted")
		}
	})
}

func TestMiddlewareOptionalPassthrough(t *testing.T) {
	h := bind(Interceptor(VerifierConfig{Accounts: StaticAccounts{}, Required: false}), func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		if _, ok := PrincipalFrom(ctx); ok {
			t.Error("unexpected principal")
		}
		return nil, nil
	})
	if _, err := h(context.Background(), newEnv()); err != nil {
		t.Fatal(err)
	}
}

func TestGridMap(t *testing.T) {
	m := GridMap{"wasson@virginia.edu": {Username: "labuser", Password: "pw"}}
	creds, ok := m.Map(Principal{Username: "wasson@virginia.edu", Password: "gridpw"})
	if !ok || creds.Username != "labuser" || creds.Password != "pw" {
		t.Fatalf("mapped %+v %v", creds, ok)
	}
	if _, ok := m.Map(Principal{Username: "stranger"}); ok {
		t.Fatal("unmapped identity resolved")
	}
}

func TestIdentityMapperPassthrough(t *testing.T) {
	creds, ok := IdentityMapper{}.Map(Principal{Username: "u", Password: "p"})
	if !ok || creds.Username != "u" || creds.Password != "p" {
		t.Fatalf("identity map %+v %v", creds, ok)
	}
}
