package wssec

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"time"

	"uvacg/internal/soap"
	"uvacg/internal/xmlutil"
)

// NS is the WS-Security (wsse) namespace.
const NS = "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd"

// Password type URIs from the UsernameToken profile.
const (
	PasswordText   = NS + "#PasswordText"
	PasswordDigest = NS + "#PasswordDigest"
)

var (
	qSecurity      = xmlutil.Q(NS, "Security")
	qUsernameToken = xmlutil.Q(NS, "UsernameToken")
	qUsername      = xmlutil.Q(NS, "Username")
	qPassword      = xmlutil.Q(NS, "Password")
	qNonce         = xmlutil.Q(NS, "Nonce")
	qCreated       = xmlutil.Q(NS, "Created")
	qType          = xmlutil.Q("", "Type")
)

// Credentials carry the account a job should run under (paper §4.2: the
// request to the ES must contain the username/password of the account in
// which the job should be executed).
type Credentials struct {
	Username string
	Password string
}

// Token is a decoded UsernameToken header.
type Token struct {
	Username     string
	Password     string // digest or plain text, per Type
	PasswordType string
	Nonce        string
	Created      time.Time
}

// timeLayout is the WSS utility timestamp layout.
const timeLayout = time.RFC3339Nano

// AttachUsernameToken adds a wsse:Security header carrying creds. With
// digest=true the password crosses as
// Base64(SHA256(nonce || created || password)) per the password-digest
// profile; otherwise as text (intended to be wrapped by EncryptSecurityHeader).
func AttachUsernameToken(env *soap.Envelope, creds Credentials, digest bool, now time.Time) error {
	if creds.Username == "" {
		return fmt.Errorf("wssec: empty username")
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("wssec: nonce: %w", err)
	}
	nonceB64 := base64.StdEncoding.EncodeToString(nonce)
	created := now.UTC().Format(timeLayout)

	password := creds.Password
	passType := PasswordText
	if digest {
		password = digestPassword(nonceB64, created, creds.Password)
		passType = PasswordDigest
	}
	token := xmlutil.NewContainer(qUsernameToken,
		xmlutil.NewElement(qUsername, creds.Username),
		xmlutil.NewElement(qPassword, password).SetAttr(qType, passType),
		xmlutil.NewElement(qNonce, nonceB64),
		xmlutil.NewElement(qCreated, created),
	)
	env.RemoveHeader(qSecurity)
	env.AddHeader(xmlutil.NewContainer(qSecurity, token))
	return nil
}

func digestPassword(nonceB64, created, password string) string {
	h := sha256.New()
	h.Write([]byte(nonceB64))
	h.Write([]byte(created))
	h.Write([]byte(password))
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// ExtractToken decodes the UsernameToken from an envelope's Security
// header, if present.
func ExtractToken(env *soap.Envelope) (Token, error) {
	sec := env.Header(qSecurity)
	if sec == nil {
		return Token{}, fmt.Errorf("wssec: no Security header")
	}
	ut := sec.Child(qUsernameToken)
	if ut == nil {
		return Token{}, fmt.Errorf("wssec: Security header has no UsernameToken")
	}
	tok := Token{
		Username: ut.ChildText(qUsername),
		Nonce:    ut.ChildText(qNonce),
	}
	if pw := ut.Child(qPassword); pw != nil {
		tok.Password = pw.Text
		tok.PasswordType = pw.Attr(qType)
		if tok.PasswordType == "" {
			tok.PasswordType = PasswordText
		}
	}
	if created := ut.ChildText(qCreated); created != "" {
		t, err := time.Parse(timeLayout, created)
		if err != nil {
			return tok, fmt.Errorf("wssec: bad Created timestamp %q: %w", created, err)
		}
		tok.Created = t
	}
	if tok.Username == "" {
		return tok, fmt.Errorf("wssec: UsernameToken has no Username")
	}
	return tok, nil
}

// Verify checks a token against the expected password, constant-time for
// both profiles.
func (t Token) Verify(expectedPassword string) error {
	switch t.PasswordType {
	case PasswordDigest:
		want := digestPassword(t.Nonce, t.Created.UTC().Format(timeLayout), expectedPassword)
		if !hmac.Equal([]byte(want), []byte(t.Password)) {
			return fmt.Errorf("wssec: password digest mismatch for %q", t.Username)
		}
	case PasswordText, "":
		if !hmac.Equal([]byte(expectedPassword), []byte(t.Password)) {
			return fmt.Errorf("wssec: password mismatch for %q", t.Username)
		}
	default:
		return fmt.Errorf("wssec: unsupported password type %q", t.PasswordType)
	}
	return nil
}
