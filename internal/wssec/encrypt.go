package wssec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/base64"
	"fmt"

	"uvacg/internal/soap"
	"uvacg/internal/xmlutil"
)

// NSEnc is the XML Encryption namespace.
const NSEnc = "http://www.w3.org/2001/04/xmlenc#"

var (
	qEncryptedData = xmlutil.Q(NSEnc, "EncryptedData")
	qCipherValue   = xmlutil.Q(NSEnc, "CipherValue")
	qEncryptedKey  = xmlutil.Q(NSEnc, "EncryptedKey")
	qKeyInfo       = xmlutil.Q(NSEnc, "KeyInfo")
)

// EncryptSecurityHeader replaces the envelope's wsse:Security header with
// an EncryptedData block only the holder of cert's private key can open:
// a fresh AES-256-GCM content key encrypts the serialized header, and
// RSA-OAEP under cert encrypts the content key (standard XML-Encryption
// hybrid shape). This is the simulation of the paper's "encrypted using
// the X509 certificate" credential protection.
func EncryptSecurityHeader(env *soap.Envelope, cert Certificate) error {
	sec := env.Header(qSecurity)
	if sec == nil {
		return fmt.Errorf("wssec: no Security header to encrypt")
	}
	plaintext, err := xmlutil.MarshalElement(sec)
	if err != nil {
		return err
	}
	contentKey := make([]byte, 32)
	if _, err := rand.Read(contentKey); err != nil {
		return err
	}
	block, err := aes.NewCipher(contentKey)
	if err != nil {
		return err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	sealed := gcm.Seal(nonce, nonce, plaintext, nil)

	wrappedKey, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, cert.Key, contentKey, nil)
	if err != nil {
		return fmt.Errorf("wssec: wrap content key: %w", err)
	}

	env.RemoveHeader(qSecurity)
	env.AddHeader(xmlutil.NewContainer(qEncryptedData,
		xmlutil.NewElement(qKeyInfo, cert.Fingerprint()),
		xmlutil.NewElement(qEncryptedKey, base64.StdEncoding.EncodeToString(wrappedKey)),
		xmlutil.NewElement(qCipherValue, base64.StdEncoding.EncodeToString(sealed)),
	))
	return nil
}

// DecryptSecurityHeader reverses EncryptSecurityHeader in place using the
// service's identity, restoring the plaintext wsse:Security header. It
// verifies the KeyInfo fingerprint so a header encrypted to a different
// identity fails fast rather than with an opaque OAEP error.
func DecryptSecurityHeader(env *soap.Envelope, id *Identity) error {
	enc := env.Header(qEncryptedData)
	if enc == nil {
		return fmt.Errorf("wssec: no EncryptedData header")
	}
	if fp := enc.ChildText(qKeyInfo); fp != "" && fp != id.Certificate().Fingerprint() {
		return fmt.Errorf("wssec: header encrypted for a different identity")
	}
	wrappedKey, err := base64.StdEncoding.DecodeString(enc.ChildText(qEncryptedKey))
	if err != nil {
		return fmt.Errorf("wssec: bad EncryptedKey: %w", err)
	}
	sealed, err := base64.StdEncoding.DecodeString(enc.ChildText(qCipherValue))
	if err != nil {
		return fmt.Errorf("wssec: bad CipherValue: %w", err)
	}
	contentKey, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, id.key, wrappedKey, nil)
	if err != nil {
		return fmt.Errorf("wssec: unwrap content key: %w", err)
	}
	block, err := aes.NewCipher(contentKey)
	if err != nil {
		return err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return err
	}
	if len(sealed) < gcm.NonceSize() {
		return fmt.Errorf("wssec: ciphertext too short")
	}
	plaintext, err := gcm.Open(nil, sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():], nil)
	if err != nil {
		return fmt.Errorf("wssec: decrypt: %w", err)
	}
	sec, err := xmlutil.UnmarshalElement(plaintext)
	if err != nil {
		return fmt.Errorf("wssec: decrypted header is not XML: %w", err)
	}
	env.RemoveHeader(qEncryptedData)
	env.AddHeader(sec)
	return nil
}

// HasEncryptedHeader reports whether env carries an encrypted security
// header.
func HasEncryptedHeader(env *soap.Envelope) bool {
	return env.Header(qEncryptedData) != nil
}
