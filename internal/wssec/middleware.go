package wssec

import (
	"context"
	"sync"
	"time"

	"uvacg/internal/soap"
)

// CredentialStore resolves a username to its expected password. The
// testbed uses a static account table per machine; the interface leaves
// room for the "grid credential mapping" the paper anticipates.
type CredentialStore interface {
	LookupPassword(username string) (string, bool)
}

// StaticAccounts is an in-memory CredentialStore.
type StaticAccounts map[string]string

// LookupPassword implements CredentialStore.
func (s StaticAccounts) LookupPassword(username string) (string, bool) {
	pw, ok := s[username]
	return pw, ok
}

// ReplayCache rejects reuse of (nonce, created) pairs inside the
// freshness window, the standard UsernameToken replay defence.
type ReplayCache struct {
	mu     sync.Mutex
	window time.Duration
	seen   map[string]time.Time
}

// NewReplayCache builds a cache accepting tokens at most window old.
func NewReplayCache(window time.Duration) *ReplayCache {
	return &ReplayCache{window: window, seen: make(map[string]time.Time)}
}

// Check admits a token once; the second sight of a nonce, or a stale
// Created timestamp, is rejected.
func (rc *ReplayCache) Check(nonce string, created, now time.Time) error {
	if created.IsZero() {
		return errStale
	}
	age := now.Sub(created)
	if age > rc.window || age < -rc.window {
		return errStale
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	// Opportunistic expiry keeps the map bounded by traffic-per-window.
	for n, t := range rc.seen {
		if now.Sub(t) > rc.window {
			delete(rc.seen, n)
		}
	}
	if _, dup := rc.seen[nonce]; dup {
		return errReplay
	}
	rc.seen[nonce] = created
	return nil
}

var (
	errStale  = soap.SenderFault("wssec: token outside freshness window")
	errReplay = soap.SenderFault("wssec: token replay detected")
)

type principalKey struct{}

// Principal is the authenticated account attached to a request context.
type Principal struct {
	Username string
	// Password is retained because the Execution Service must forward
	// the account credentials to ProcSpawn to launch the process as that
	// user (paper §4.2); a pure authentication layer would drop it.
	Password string
}

// PrincipalFrom recovers the authenticated principal, if any.
func PrincipalFrom(ctx context.Context) (Principal, bool) {
	p, ok := ctx.Value(principalKey{}).(Principal)
	return p, ok
}

// VerifierConfig configures the server-side security middleware.
type VerifierConfig struct {
	// Identity, when set, decrypts EncryptedData security headers.
	Identity *Identity
	// Accounts validates the UsernameToken.
	Accounts CredentialStore
	// Replay, when set, enforces nonce freshness.
	Replay *ReplayCache
	// Required, when true, faults requests with no security header.
	Required bool
	// Now supplies time for freshness checks; defaults to time.Now.
	Now func() time.Time
}

// InterceptorFor scopes Interceptor(cfg) to specific WS-Addressing
// actions: listed actions get the full verification pipeline, all
// others pass through untouched. The testbed secures exactly the
// operations that carry account credentials (the ES Run and the SS
// Submit, paper §4.2) while service-to-service callbacks and standard
// WSRF property reads stay open.
func InterceptorFor(cfg VerifierConfig, actions ...string) soap.Interceptor {
	guarded := make(map[string]bool, len(actions))
	for _, a := range actions {
		guarded[a] = true
	}
	full := Interceptor(cfg)
	return func(ctx context.Context, call *soap.CallInfo, next soap.Handler) (*soap.Envelope, error) {
		if guarded[call.Action] {
			return full(ctx, call, next)
		}
		return next(ctx, call)
	}
}

// Interceptor builds a server-side soap.Interceptor enforcing cfg: it
// decrypts the security header if needed, validates the UsernameToken
// against the account store, checks replay, and attaches the Principal
// to the request context for the handler (the ES reads it to pick the
// spawn account).
func Interceptor(cfg VerifierConfig) soap.Interceptor {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return func(ctx context.Context, call *soap.CallInfo, next soap.Handler) (*soap.Envelope, error) {
		req := call.Request
		if HasEncryptedHeader(req) {
			if cfg.Identity == nil {
				return nil, soap.SenderFault("wssec: service cannot decrypt security headers")
			}
			if err := DecryptSecurityHeader(req, cfg.Identity); err != nil {
				return nil, soap.SenderFault("wssec: %v", err)
			}
		}
		tok, err := ExtractToken(req)
		if err != nil {
			if cfg.Required {
				return nil, soap.SenderFault("wssec: authentication required: %v", err)
			}
			return next(ctx, call)
		}
		if cfg.Accounts == nil {
			return nil, soap.ReceiverFault("wssec: no account store configured")
		}
		expected, ok := cfg.Accounts.LookupPassword(tok.Username)
		if !ok {
			return nil, soap.SenderFault("wssec: unknown account %q", tok.Username)
		}
		if err := tok.Verify(expected); err != nil {
			return nil, soap.SenderFault("wssec: %v", err)
		}
		if cfg.Replay != nil {
			if err := cfg.Replay.Check(tok.Nonce, tok.Created, now()); err != nil {
				return nil, err
			}
		}
		// The verified plaintext password is what ProcSpawn needs.
		ctx = context.WithValue(ctx, principalKey{}, Principal{Username: tok.Username, Password: expected})
		return next(ctx, call)
	}
}
