// Package wssec implements the WS-Security slice the testbed uses: the
// UsernameToken password profile (plain and digest forms), timestamps
// with a replay cache, and hybrid public-key encryption of the token so
// credentials cross the wire opaquely — the paper's Execution Service
// receives the username/password "using a WS-Security password profile
// SOAP header, which is then encrypted using the X509 certificate"
// (paper §4.2). Real X.509 machinery is simulated by bare RSA identities
// with a subject name; the header formats and the verification pipeline
// are faithful.
package wssec

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"math/big"
)

// Identity is a simulated X.509 identity: a subject name bound to an RSA
// keypair. Services publish the Certificate half; clients encrypt
// credential headers to it.
type Identity struct {
	subject string
	key     *rsa.PrivateKey
}

// Certificate is the public half of an Identity.
type Certificate struct {
	Subject string
	Key     *rsa.PublicKey
}

// NewIdentity generates a fresh identity. Key size is kept small (1024)
// because these are ephemeral simulation keys regenerated per process,
// not long-lived credentials.
func NewIdentity(subject string) (*Identity, error) {
	if subject == "" {
		return nil, fmt.Errorf("wssec: identity requires a subject")
	}
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		return nil, fmt.Errorf("wssec: generate key: %w", err)
	}
	return &Identity{subject: subject, key: key}, nil
}

// Subject returns the identity's subject name.
func (id *Identity) Subject() string { return id.subject }

// Certificate returns the shareable public half.
func (id *Identity) Certificate() Certificate {
	return Certificate{Subject: id.subject, Key: &id.key.PublicKey}
}

// Fingerprint returns a short stable identifier for the certificate,
// used as the KeyInfo reference in encrypted headers.
func (c Certificate) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte(c.Subject))
	h.Write(c.Key.N.Bytes())
	h.Write(big.NewInt(int64(c.Key.E)).Bytes())
	return base64.StdEncoding.EncodeToString(h.Sum(nil)[:12])
}
