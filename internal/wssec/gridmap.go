package wssec

// GridMap maps authenticated grid identities to local machine accounts —
// the gridmap-file pattern the paper anticipates: "we anticipate having
// either the ES or the ProcSpawn service be able to map 'grid
// credentials' to local user accounts in the future" (§4.2). A client
// authenticates once with grid-wide credentials; each machine runs the
// job under whatever local account its map assigns.
type GridMap map[string]Credentials

// Map resolves a verified grid principal to local credentials.
func (m GridMap) Map(p Principal) (Credentials, bool) {
	creds, ok := m[p.Username]
	return creds, ok
}

// AccountMapper is anything that turns a grid principal into local
// credentials. Execution Services accept one to decouple grid identity
// from machine accounts.
type AccountMapper interface {
	Map(p Principal) (Credentials, bool)
}

var _ AccountMapper = GridMap(nil)

// IdentityMapper passes the grid principal through unchanged — the
// testbed's original behaviour where the Run request carries the local
// account directly.
type IdentityMapper struct{}

// Map implements AccountMapper.
func (IdentityMapper) Map(p Principal) (Credentials, bool) {
	return Credentials{Username: p.Username, Password: p.Password}, true
}
