package benchkit

import (
	"context"
	"testing"

	"uvacg/internal/resourcedb"
	"uvacg/internal/services/scheduler"
)

// These tests keep the measurement harnesses honest: every operation
// the benchmarks time must actually succeed and observe real effects.

func TestPropertyHarnessOps(t *testing.T) {
	h, err := NewPropertyHarness(resourcedb.StructuredCodec{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, fn := range map[string]func(context.Context) error{
		"GetProperty":   h.GetProperty,
		"Query":         h.Query,
		"QueryComputed": h.QueryComputed,
		"CustomGet":     h.CustomGet,
		"Stateless":     h.StatelessEcho,
		"Mutate":        h.Mutate,
		"SetProperty":   h.SetProperty,
	} {
		if err := fn(ctx); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := h.GetMultiple(ctx, 4); err != nil {
		t.Errorf("GetMultiple: %v", err)
	}
}

func TestRediscoveryHarness(t *testing.T) {
	h, err := NewRediscoveryHarness(40)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := h.Rediscover()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 10 { // every fourth resource is Running
		t.Fatalf("recovered %d, want 10", recovered)
	}
	if h.ClientTableBytes() == 0 {
		t.Fatal("EPR table size is zero")
	}
}

func TestCodecHarness(t *testing.T) {
	for _, codec := range []resourcedb.Codec{resourcedb.StructuredCodec{}, resourcedb.BlobCodec{}} {
		h, err := NewCodecHarness(codec, 8, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Save(); err != nil {
			t.Fatal(err)
		}
		if err := h.Load(); err != nil {
			t.Fatal(err)
		}
		n, err := h.QueryByProperty()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("%s: query matched nothing", codec.Name())
		}
	}
}

func TestNotifyHarnessDeliveryCounts(t *testing.T) {
	for _, viaBroker := range []bool{false, true} {
		h, err := NewNotifyHarness(3, viaBroker)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := h.PublishAndWait(ctx); err != nil {
			t.Fatalf("viaBroker=%v: %v", viaBroker, err)
		}
		if h.Received() != 3 {
			t.Fatalf("viaBroker=%v: received %d", viaBroker, h.Received())
		}
		if err := h.PollOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTransferHarnessAllRoutes(t *testing.T) {
	h, err := NewTransferHarness(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ctx := context.Background()
	for _, scheme := range []string{"inproc", "http", "soap.tcp"} {
		n, err := h.Fetch(ctx, scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if n != 8<<10 {
			t.Fatalf("%s: fetched %d bytes", scheme, n)
		}
	}
	if _, err := h.Fetch(ctx, "carrier-pigeon"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := h.LocalStage(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.SyncUpload(ctx); err != nil {
		t.Fatal(err)
	}
	blocked, total, err := h.AsyncUpload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if blocked > total {
		t.Fatalf("blocked %v exceeds total %v", blocked, total)
	}
}

func TestGridHarnessWorkloads(t *testing.T) {
	h, err := NewGridHarness(HeterogeneousNodes(), scheduler.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ctx := context.Background()
	if _, err := h.RunBatch(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunPipeline(ctx, 3); err != nil {
		t.Fatal(err)
	}
}

func TestLifetimeHarness(t *testing.T) {
	h, err := NewLifetimeHarness(64)
	if err != nil {
		t.Fatal(err)
	}
	if destroyed := h.Sweep(); destroyed != 8 {
		t.Fatalf("first sweep destroyed %d, want 8", destroyed)
	}
	if destroyed := h.Sweep(); destroyed != 0 {
		t.Fatalf("steady-state sweep destroyed %d", destroyed)
	}
}

func TestSecurityHarnessModes(t *testing.T) {
	h, err := NewSecurityHarness()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, fn := range map[string]func(context.Context) error{
		"plain":     h.Plain,
		"token":     h.UsernameTokenPlain,
		"digest":    h.UsernameTokenDigest,
		"encrypted": h.EncryptedToken,
	} {
		if err := fn(ctx); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestUtilizationSweepMonotone(t *testing.T) {
	loose, looseErr, err := UtilizationSweep(0.25, 400)
	if err != nil {
		t.Fatal(err)
	}
	tight, tightErr, err := UtilizationSweep(0.02, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Tighter thresholds notify more and track truth more closely.
	if tight <= loose {
		t.Fatalf("notify counts: tight=%d loose=%d", tight, loose)
	}
	if tightErr >= looseErr {
		t.Fatalf("staleness: tight=%f loose=%f", tightErr, looseErr)
	}
}
