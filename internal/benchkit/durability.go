package benchkit

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"uvacg/internal/resourcedb"
	"uvacg/internal/xmlutil"
)

// qRow is the payload element durability runs write.
var qRow = xmlutil.Q(NSBench, "Row")

// Durability commit modes: how each acknowledged Put is made to survive
// a crash. "fsync" and "nosync" journal through the WAL (with and
// without the per-group-commit fsync); "snapshot-only" is the legacy
// story taken to the same guarantee — a whole-store snapshot after
// every Put, since anything less leaves acknowledged commits volatile.
const (
	ModeFsync        = "fsync"
	ModeNosync       = "nosync"
	ModeSnapshotOnly = "snapshot-only"
)

// DurabilityResult is one measured commit run.
type DurabilityResult struct {
	Mode    string
	Ops     int
	Workers int
	Elapsed time.Duration
	// Syncs and Batches expose the group-commit amortization for the WAL
	// modes (zero for snapshot-only).
	Syncs   uint64
	Batches uint64
}

// PerOp is the mean latency of one durable commit.
func (r DurabilityResult) PerOp() time.Duration {
	if r.Ops == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Ops)
}

// RunCommits performs ops durable Puts of rowBytes-sized rows from
// `workers` concurrent committers under the given mode and reports the
// wall time. The data directory is temporary and removed afterwards.
func RunCommits(mode string, ops, rowBytes, workers int) (DurabilityResult, error) {
	dir, err := os.MkdirTemp("", "uvacg-durability-*")
	if err != nil {
		return DurabilityResult{}, err
	}
	defer os.RemoveAll(dir)
	res := DurabilityResult{Mode: mode, Ops: ops, Workers: workers}
	doc := xmlutil.NewElement(qRow, strings.Repeat("x", rowBytes))

	var table *resourcedb.Table
	var after func(id string) error
	var ds *resourcedb.DurableStore
	switch mode {
	case ModeFsync, ModeNosync:
		ds, err = resourcedb.OpenDurable(dir, resourcedb.DurableOptions{
			Sync:         mode == ModeFsync,
			CompactBytes: -1,
		})
		if err != nil {
			return res, err
		}
		table = ds.MustTable("bench", resourcedb.BlobCodec{})
		after = func(string) error { return nil }
	case ModeSnapshotOnly:
		store := resourcedb.NewStore()
		table = store.MustTable("bench", resourcedb.BlobCodec{})
		snap := dir + "/snapshot.db"
		// Whole-store snapshots are inherently serial (one writer owns
		// the snapshot file), unlike WAL group commit.
		var snapMu sync.Mutex
		after = func(string) error {
			snapMu.Lock()
			defer snapMu.Unlock()
			return store.SaveFile(snap)
		}
	default:
		return res, fmt.Errorf("benchkit: unknown durability mode %q", mode)
	}

	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*ops/workers, (w+1)*ops/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				id := fmt.Sprintf("row-%d", i)
				if err := table.Put(id, doc); err != nil {
					errs <- err
					return
				}
				if err := after(id); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	select {
	case err := <-errs:
		return res, err
	default:
	}
	if ds != nil {
		st := ds.Stats()
		res.Syncs, res.Batches = st.WAL.Syncs, st.WAL.Batches
		if err := ds.Close(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// RunRecovery journals `records` rows of rowBytes and measures a cold
// OpenDurable over the resulting log — the restart debt at that log
// length. Returns the replay wall time.
func RunRecovery(records, rowBytes int) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "uvacg-recovery-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	ds, err := resourcedb.OpenDurable(dir, resourcedb.DurableOptions{CompactBytes: -1})
	if err != nil {
		return 0, err
	}
	doc := xmlutil.NewElement(qRow, strings.Repeat("x", rowBytes))
	table := ds.MustTable("bench", resourcedb.BlobCodec{})
	for i := 0; i < records; i++ {
		if err := table.Put(fmt.Sprintf("row-%d", i), doc); err != nil {
			return 0, err
		}
	}
	if err := ds.Close(); err != nil {
		return 0, err
	}

	start := time.Now()
	ds2, err := resourcedb.OpenDurable(dir, resourcedb.DurableOptions{CompactBytes: -1})
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if got := ds2.Stats().ReplayedRecords; got != uint64(records) {
		ds2.Close()
		return 0, fmt.Errorf("benchkit: recovery replayed %d of %d records", got, records)
	}
	return elapsed, ds2.Close()
}
