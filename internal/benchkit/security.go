package benchkit

import (
	"context"
	"fmt"
	"time"

	"uvacg/internal/soap"
	"uvacg/internal/wssec"
	"uvacg/internal/xmlutil"
)

// SecurityHarness is the E10 rig: one representative request envelope
// pushed through each credential-protection level, including the
// server-side verification, so the measured cost is the full round
// trip a secured Run request pays.
type SecurityHarness struct {
	identity *wssec.Identity
	creds    wssec.Credentials
	verify   soap.HandlerFunc
	body     *xmlutil.Element
}

// NewSecurityHarness builds the rig.
func NewSecurityHarness() (*SecurityHarness, error) {
	id, err := wssec.NewIdentity("CN=ES/bench")
	if err != nil {
		return nil, err
	}
	ic := wssec.Interceptor(wssec.VerifierConfig{
		Identity: id,
		Accounts: wssec.StaticAccounts{"scientist": "secret"},
		Required: true,
	})
	verify := func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		call := &soap.CallInfo{Side: soap.ServerSide, Request: req}
		return ic(ctx, call, func(ctx context.Context, call *soap.CallInfo) (*soap.Envelope, error) {
			if _, ok := wssec.PrincipalFrom(ctx); !ok {
				return nil, fmt.Errorf("benchkit: no principal after verification")
			}
			return nil, nil
		})
	}
	return &SecurityHarness{
		identity: id,
		creds:    wssec.Credentials{Username: "scientist", Password: "secret"},
		verify:   verify,
		body:     xmlutil.NewElement(xmlutil.Q(NSBench, "RunJob"), "payload"),
	}, nil
}

// Plain serializes and parses the request with no security at all —
// the zero-cost floor.
func (h *SecurityHarness) Plain(ctx context.Context) error {
	env := soap.New(h.body.Clone())
	data, err := env.Marshal()
	if err != nil {
		return err
	}
	_, err = soap.Unmarshal(data)
	return err
}

// roundTrip attaches credentials per mode, crosses the wire encoding,
// and verifies server-side.
func (h *SecurityHarness) roundTrip(ctx context.Context, digest, encrypt bool) error {
	env := soap.New(h.body.Clone())
	if err := wssec.AttachUsernameToken(env, h.creds, digest, time.Now()); err != nil {
		return err
	}
	if encrypt {
		if err := wssec.EncryptSecurityHeader(env, h.identity.Certificate()); err != nil {
			return err
		}
	}
	data, err := env.Marshal()
	if err != nil {
		return err
	}
	received, err := soap.Unmarshal(data)
	if err != nil {
		return err
	}
	_, err = h.verify(ctx, received)
	return err
}

// UsernameTokenPlain measures the plaintext password profile.
func (h *SecurityHarness) UsernameTokenPlain(ctx context.Context) error {
	return h.roundTrip(ctx, false, false)
}

// UsernameTokenDigest measures the password-digest profile.
func (h *SecurityHarness) UsernameTokenDigest(ctx context.Context) error {
	return h.roundTrip(ctx, true, false)
}

// EncryptedToken measures the paper's full protection: UsernameToken
// hybrid-encrypted to the service certificate, decrypted and verified
// server-side.
func (h *SecurityHarness) EncryptedToken(ctx context.Context) error {
	return h.roundTrip(ctx, false, true)
}
