package benchkit

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"uvacg/internal/admission"
	"uvacg/internal/resourcedb"
	"uvacg/internal/simgrid"
	"uvacg/internal/xmlutil"
)

// AdmissionResult is one E14 storm run: many tenants hammer the
// admission front door, every accepted submission paying the real
// durable journal write before its ack.
type AdmissionResult struct {
	Tenants   int
	Workers   int
	Submitted int
	Accepted  int
	Shed      int
	Drained   int
	Elapsed   time.Duration
	AckP50    time.Duration
	AckP99    time.Duration
}

// AcceptedPerSec is the sustained admitted-submission throughput.
func (r AdmissionResult) AcceptedPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Accepted) / r.Elapsed.Seconds()
}

// MeasureAdmissionStorm floods an admission queue from `workers`
// concurrent submitters spread over `tenants` tenants, setsPerTenant
// submissions each. Every accepted submission performs the journal
// write the scheduler's admission path performs (one durable Put of the
// job-set document) before Commit, so the measured ack latency is the
// real enqueue cost. With drain=true a consumer pumps the queue
// concurrently and the run reports sustained throughput (no sheds);
// with drain=false the queue saturates against maxQueued and the run
// reports the saturation-vs-shed split.
func MeasureAdmissionStorm(tenants, setsPerTenant, maxQueued, workers int, drain bool) (AdmissionResult, error) {
	if tenants < 1 || setsPerTenant < 1 {
		return AdmissionResult{}, fmt.Errorf("benchkit: bad admission storm shape %d×%d", tenants, setsPerTenant)
	}
	if workers < 1 {
		workers = 1
	}
	dir, err := os.MkdirTemp("", "uvacg-admission-*")
	if err != nil {
		return AdmissionResult{}, err
	}
	defer os.RemoveAll(dir)
	ds, err := resourcedb.OpenDurable(dir, resourcedb.DurableOptions{Sync: true, CompactBytes: -1})
	if err != nil {
		return AdmissionResult{}, err
	}
	defer ds.Close()
	table := ds.MustTable("jobsets", resourcedb.BlobCodec{})

	q := admission.New(admission.Config{MaxQueued: maxQueued})
	res := AdmissionResult{Tenants: tenants, Workers: workers, Submitted: tenants * setsPerTenant}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var drained atomic.Int64
	var consumer sync.WaitGroup
	if drain {
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for {
				e, err := q.Next(ctx)
				if err != nil {
					return
				}
				q.Done(e.Tenant)
				drained.Add(1)
			}
		}()
	}

	doc := xmlutil.NewElement(qRow, "queued job set document")
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
	}
	lats := make([][]time.Duration, workers)
	sheds := make([]int, workers)
	errs := make(chan error, workers)
	total := res.Submitted
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*total/workers, (w+1)*total/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				t0 := time.Now()
				rsv, err := q.Reserve(names[i%tenants], "")
				if err != nil {
					if admission.IsQueueFull(err) {
						sheds[w]++
						continue
					}
					errs <- err
					return
				}
				id := fmt.Sprintf("set-%d", i)
				if err := table.Put(id, doc); err != nil {
					rsv.Abort()
					errs <- err
					return
				}
				rsv.Commit(admission.Entry{ID: id, Name: id, Topic: "jobset-" + id})
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w, lo, hi)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	select {
	case err := <-errs:
		return res, err
	default:
	}

	var all []time.Duration
	for w := range lats {
		all = append(all, lats[w]...)
		res.Shed += sheds[w]
	}
	res.Accepted = len(all)
	if drain {
		for deadline := time.Now().Add(time.Minute); int(drained.Load()) < res.Accepted; {
			if time.Now().After(deadline) {
				return res, fmt.Errorf("benchkit: consumer drained %d of %d", drained.Load(), res.Accepted)
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	consumer.Wait()
	res.Drained = int(drained.Load())

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.AckP50 = all[len(all)/2]
		res.AckP99 = all[len(all)*99/100]
	}
	return res, nil
}

// MeasureFairShare prefills one backlog per weighted tenant (rounds ×
// weight entries each, so every backlog drains on the same rotation),
// drains the queue, and reports each tenant's dequeue share inside the
// contention window plus the worst pairwise weight-normalized ratio —
// the E14 fairness figure (must stay under 2×).
func MeasureFairShare(weights map[string]int, rounds int) (map[string]int, float64, error) {
	if len(weights) < 2 || rounds < 1 {
		return nil, 0, fmt.Errorf("benchkit: fair-share needs ≥2 tenants and ≥1 round")
	}
	var events []admission.Event
	var evMu sync.Mutex
	q := admission.New(admission.Config{
		Weights: weights,
		Observer: func(ev admission.Event) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		},
	})
	names := make([]string, 0, len(weights))
	for name := range weights {
		names = append(names, name)
	}
	sort.Strings(names)
	seq, total := uint64(0), 0
	for _, name := range names {
		for k := 0; k < rounds*weights[name]; k++ {
			seq++
			total++
			q.Requeue(admission.Entry{
				ID: fmt.Sprintf("%s-%d", name, k), Name: name, Topic: "t", Tenant: name, Seq: seq,
			})
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i := 0; i < total; i++ {
		e, err := q.Next(ctx)
		if err != nil {
			return nil, 0, err
		}
		q.Done(e.Tenant)
	}
	share := simgrid.DequeueShare(events, names...)
	worst := 0.0
	for _, a := range names {
		for _, b := range names {
			if share[b] == 0 {
				continue
			}
			r := (float64(share[a]) / float64(weights[a])) / (float64(share[b]) / float64(weights[b]))
			if r > worst {
				worst = r
			}
		}
	}
	return share, worst, nil
}
