package benchkit

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"uvacg/internal/admission"
	"uvacg/internal/procspawn"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/simgrid"
)

// RetryStormResult is one E16 retry-storm run: a wide set of jobs that
// all fail every attempt, each re-dispatched until its budget is spent.
// The scheduler's failure path — kill, journal, backoff, re-dispatch —
// is the measured machinery, not the jobs themselves.
type RetryStormResult struct {
	Jobs       int
	Limit      int
	Dispatches int // committed dispatch records (want Jobs × (Limit+1))
	Elapsed    time.Duration
}

// DispatchesPerSec is the sustained failure-path dispatch throughput.
func (r RetryStormResult) DispatchesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Dispatches) / r.Elapsed.Seconds()
}

// MeasureRetryStorm is the E16 throughput rig: n independent
// single-job sets whose job always fails, each with an
// immediate-backoff retry budget of `limit`, pushed through a four-node
// grid to their Failed end states. One set per job, because the
// fail-fast doom model is part of the lifecycle: a sibling's permanent
// failure would cancel a parked retry, and the storm must burn every
// budget in full. Every job costs limit+1 dispatches, so the run prices
// the whole retry cycle: failure intake, attempt journaling, EPR
// cleanup and re-dispatch.
func MeasureRetryStorm(ctx context.Context, n, limit int) (RetryStormResult, error) {
	if n < 1 || limit < 1 {
		return RetryStormResult{}, fmt.Errorf("benchkit: bad retry storm shape %d jobs × limit %d", n, limit)
	}
	dir, err := os.MkdirTemp("", "uvacg-retrystorm-*")
	if err != nil {
		return RetryStormResult{}, err
	}
	defer os.RemoveAll(dir)
	c, err := simgrid.NewCluster(simgrid.ClusterConfig{Seed: 16, Nodes: 4, DataDir: dir})
	if err != nil {
		return RetryStormResult{}, err
	}
	defer c.Close()
	c.Observer.Files.Publish("fail.app", procspawn.BuildScript("exit 1"))

	topics := make([]string, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		spec := &scheduler.JobSetSpec{Name: fmt.Sprintf("storm-%03d", i), Jobs: []scheduler.JobSpec{{
			Name:       "f",
			Executable: "local://fail.app",
			Retry:      scheduler.RetryPolicy{Limit: limit},
		}}}
		ack, err := c.Submit(ctx, spec)
		if err != nil {
			return RetryStormResult{}, err
		}
		topics = append(topics, ack.Topic)
	}
	for _, topic := range topics {
		if err := awaitDocStatus(ctx, c, topic, scheduler.SetFailed); err != nil {
			return RetryStormResult{}, err
		}
	}
	res := RetryStormResult{Jobs: n, Limit: limit, Elapsed: time.Since(start)}
	want := make(map[string]bool, n)
	for _, topic := range topics {
		want[topic] = true
	}
	for _, d := range c.Dispatches() {
		if want[d.Topic] {
			res.Dispatches++
		}
	}
	if want := n * (limit + 1); res.Dispatches != want {
		return res, fmt.Errorf("benchkit: retry storm dispatched %d, want %d", res.Dispatches, want)
	}
	return res, nil
}

// PreemptionResult is one E16 latency run: round after round, an
// interactive arrival finds its tenant's single running slot held by a
// scavenger set and must evict it. Evict is submit → the scavenger's
// preemption journaled and published; Resume is submit → the
// interactive set complete on the freed slot.
type PreemptionResult struct {
	Rounds    int
	EvictP50  time.Duration
	EvictMax  time.Duration
	ResumeP50 time.Duration
}

// MeasurePreemption is the E16 latency rig: a one-node grid with a
// tenant running-quota of 1 and preemption on. Each round parks a
// long scavenger set on the slot, then times an interactive submit to
// the scavenger's eviction and to its own completion. The preempted
// scavenger re-runs to completion before the next round, so rounds
// never stack in the queue.
func MeasurePreemption(ctx context.Context, rounds int) (PreemptionResult, error) {
	if rounds < 1 {
		return PreemptionResult{}, fmt.Errorf("benchkit: preemption needs ≥1 round")
	}
	dir, err := os.MkdirTemp("", "uvacg-preempt-*")
	if err != nil {
		return PreemptionResult{}, err
	}
	defer os.RemoveAll(dir)
	c, err := simgrid.NewCluster(simgrid.ClusterConfig{
		Seed: 17, Nodes: 1, DataDir: dir,
		Admission: &simgrid.AdmissionConfig{TenantRunning: 1},
		Preempt:   true,
	})
	if err != nil {
		return PreemptionResult{}, err
	}
	defer c.Close()
	c.Observer.Files.Publish("hold.app", procspawn.BuildScript("compute 200000", "exit 0"))
	c.Observer.Files.Publish("quick.app", procspawn.BuildScript("exit 0"))

	evicts := make([]time.Duration, 0, rounds)
	resumes := make([]time.Duration, 0, rounds)
	for round := 0; round < rounds; round++ {
		scav := &scheduler.JobSetSpec{
			Name: fmt.Sprintf("hold-%d", round), Class: admission.ClassScavenger,
			Jobs: []scheduler.JobSpec{{Name: "h", Executable: "local://hold.app"}},
		}
		scavAck, err := c.Submit(ctx, scav)
		if err != nil {
			return PreemptionResult{}, err
		}
		if err := awaitEvent(ctx, c, scavAck.Topic, "h", "started"); err != nil {
			return PreemptionResult{}, fmt.Errorf("benchkit: round %d scavenger never started: %w", round, err)
		}

		inter := &scheduler.JobSetSpec{
			Name: fmt.Sprintf("rush-%d", round), Class: admission.ClassInteractive,
			Jobs: []scheduler.JobSpec{{Name: "r", Executable: "local://quick.app"}},
		}
		t0 := time.Now()
		interAck, err := c.Submit(ctx, inter)
		if err != nil {
			return PreemptionResult{}, err
		}
		if err := awaitEvent(ctx, c, scavAck.Topic, "", "jobset:preempted"); err != nil {
			return PreemptionResult{}, fmt.Errorf("benchkit: round %d scavenger never preempted: %w", round, err)
		}
		evicts = append(evicts, time.Since(t0))
		if err := awaitDocStatus(ctx, c, interAck.Topic, scheduler.SetCompleted); err != nil {
			return PreemptionResult{}, fmt.Errorf("benchkit: round %d interactive: %w", round, err)
		}
		resumes = append(resumes, time.Since(t0))
		// Drain the requeued scavenger so the next round's slot fight is
		// identical to this one's.
		if err := awaitDocStatus(ctx, c, scavAck.Topic, scheduler.SetCompleted); err != nil {
			return PreemptionResult{}, fmt.Errorf("benchkit: round %d scavenger rerun: %w", round, err)
		}
	}
	sort.Slice(evicts, func(i, j int) bool { return evicts[i] < evicts[j] })
	sort.Slice(resumes, func(i, j int) bool { return resumes[i] < resumes[j] })
	return PreemptionResult{
		Rounds:    rounds,
		EvictP50:  evicts[len(evicts)/2],
		EvictMax:  evicts[len(evicts)-1],
		ResumeP50: resumes[len(resumes)/2],
	}, nil
}

// awaitDocStatus polls the persisted job-set document for a status.
func awaitDocStatus(ctx context.Context, c *simgrid.Cluster, topic, want string) error {
	for {
		for _, v := range c.JobSetDocs() {
			if v.Topic == topic && v.Status == want {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("benchkit: set %s never reached %s: %w", topic, want, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// awaitEvent polls the observer for an event on a set topic. An empty
// job matches set-level events.
func awaitEvent(ctx context.Context, c *simgrid.Cluster, topic, job, kind string) error {
	for {
		for _, ev := range c.Observer.Events() {
			if ev.Set == topic && ev.Kind == kind && (job == "" || ev.Job == job) {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("benchkit: no %s event on %s: %w", kind, topic, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}
