// Package benchkit builds the measurement harnesses behind the
// experiment suite in EXPERIMENTS.md (E1-E10, F1, F3). Each harness
// assembles just enough of the testbed to exercise one claim from the
// paper's evaluation and exposes tight operation closures that both the
// root testing.B benchmarks and the cmd/wsrfbench table generator drive.
package benchkit

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"uvacg/internal/resourcedb"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/wsa"
	"uvacg/internal/wsrf"
	"uvacg/internal/xmlutil"
)

// NSBench is the namespace benchmark services use.
const NSBench = "urn:uvacg:bench"

// ActionCustomGet is the bespoke (non-WSRF) state accessor used as the
// E1 baseline: the "custom interfaces for manipulating state" §5 weighs
// standardized resource properties against.
const ActionCustomGet = NSBench + "/CustomGet"

// ActionStatelessEcho dispatches with no resource behind it — the F1
// baseline without the load/save pipeline.
const ActionStatelessEcho = NSBench + "/StatelessEcho"

// ActionMutate increments a counter property (forces a save-back).
const ActionMutate = NSBench + "/Mutate"

var (
	QProp0   = xmlutil.Q(NSBench, "Prop0")
	qCounter = xmlutil.Q(NSBench, "Counter")
	qBanner  = xmlutil.Q(NSBench, "Banner")
	qEcho    = xmlutil.Q(NSBench, "Echo")
)

// PropertyHarness hosts one WSRF resource with nprops state properties,
// a computed property, a custom accessor and a stateless echo — the
// E1/F1 rig.
type PropertyHarness struct {
	Client   *transport.Client
	Server   *transport.Server
	Service  *wsrf.Service
	Resource wsa.EndpointReference
	RC       *wsrf.ResourceClient
}

// NewPropertyHarness builds the rig with the given codec ("structured"
// or "blob") and state-property count.
func NewPropertyHarness(codec resourcedb.Codec, nprops int) (*PropertyHarness, error) {
	store := resourcedb.NewStore()
	svc, err := wsrf.NewService(wsrf.ServiceConfig{
		Path:    "/BenchService",
		Address: "inproc://bench",
		Home:    wsrf.NewStateHome(store.MustTable("bench", codec)),
	})
	if err != nil {
		return nil, err
	}
	svc.Enable(wsrf.ResourcePropertiesPortType{})
	svc.Enable(wsrf.LifetimePortType{})
	svc.RegisterProperty(qBanner, func(ctx context.Context, inv *wsrf.Invocation) ([]*xmlutil.Element, error) {
		return []*xmlutil.Element{xmlutil.NewElement(qBanner, "state is "+inv.Property(QProp0))}, nil
	})
	svc.RegisterMethod(ActionCustomGet, func(ctx context.Context, inv *wsrf.Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
		return xmlutil.NewElement(QProp0, inv.Property(QProp0)), nil
	})
	svc.RegisterMethod(ActionMutate, func(ctx context.Context, inv *wsrf.Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
		n, _ := strconv.Atoi(inv.Property(qCounter))
		inv.SetProperty(qCounter, strconv.Itoa(n+1))
		return nil, nil
	})
	svc.RegisterServiceMethod(ActionStatelessEcho, func(ctx context.Context, inv *wsrf.Invocation, body *xmlutil.Element) (*xmlutil.Element, error) {
		return body.Clone(), nil
	})

	doc := xmlutil.NewContainer(xmlutil.Q(NSBench, "State"), xmlutil.NewElement(qCounter, "0"))
	for i := 0; i < nprops; i++ {
		doc.Append(xmlutil.NewElement(xmlutil.Q(NSBench, fmt.Sprintf("Prop%d", i)), fmt.Sprintf("value-%d", i)))
	}
	epr, err := svc.CreateResource("bench-resource", doc)
	if err != nil {
		return nil, err
	}

	mux := soap.NewMux()
	mux.Handle(svc.Path(), svc.Dispatcher())
	network := transport.NewNetwork()
	server := transport.NewServer(mux)
	network.Register("bench", server)
	client := transport.NewClient().WithNetwork(network)
	return &PropertyHarness{
		Client:   client,
		Server:   server,
		Service:  svc,
		Resource: epr,
		RC:       wsrf.NewResourceClient(client, epr),
	}, nil
}

// GetProperty performs one standardized GetResourceProperty.
func (h *PropertyHarness) GetProperty(ctx context.Context) error {
	_, err := h.RC.GetProperty(ctx, QProp0)
	return err
}

// GetMultiple fetches k properties in one round trip.
func (h *PropertyHarness) GetMultiple(ctx context.Context, k int) error {
	names := make([]xmlutil.QName, k)
	for i := 0; i < k; i++ {
		names[i] = xmlutil.Q(NSBench, fmt.Sprintf("Prop%d", i))
	}
	_, err := h.RC.GetMultiple(ctx, names...)
	return err
}

// Query evaluates one XPath-lite query over the properties document.
func (h *PropertyHarness) Query(ctx context.Context) error {
	_, err := h.RC.Query(ctx, "/Prop0[text()='value-0']")
	return err
}

// QueryComputed queries a provider-computed property.
func (h *PropertyHarness) QueryComputed(ctx context.Context) error {
	_, err := h.RC.Query(ctx, "/Banner")
	return err
}

// CustomGet performs the bespoke accessor call (E1 baseline).
func (h *PropertyHarness) CustomGet(ctx context.Context) error {
	_, err := h.Client.Call(ctx, h.Resource, ActionCustomGet, xmlutil.NewElement(qEcho, ""))
	return err
}

// StatelessEcho dispatches without the wrapper pipeline (F1 baseline).
func (h *PropertyHarness) StatelessEcho(ctx context.Context) error {
	_, err := h.Client.Call(ctx, h.Service.EPR(), ActionStatelessEcho, xmlutil.NewElement(qEcho, "ping"))
	return err
}

// Mutate runs a state-changing method (load + save through the DB).
func (h *PropertyHarness) Mutate(ctx context.Context) error {
	_, err := h.Client.Call(ctx, h.Resource, ActionMutate, xmlutil.NewElement(qEcho, ""))
	return err
}

// SetProperty performs one SetResourceProperties update.
func (h *PropertyHarness) SetProperty(ctx context.Context) error {
	return h.RC.Set(ctx, wsrf.UpdateComponent(xmlutil.NewElement(QProp0, "updated")))
}

// RediscoveryHarness is the E2 rig: n resources whose EPRs a client
// could lose, recoverable only through queries.
type RediscoveryHarness struct {
	Service *wsrf.Service
	Table   *resourcedb.Table
	EPRs    []wsa.EndpointReference
}

// NewRediscoveryHarness provisions n job-like resources, a quarter of
// them with Status "Running".
func NewRediscoveryHarness(n int) (*RediscoveryHarness, error) {
	store := resourcedb.NewStore()
	table := store.MustTable("jobs", resourcedb.StructuredCodec{})
	svc, err := wsrf.NewService(wsrf.ServiceConfig{
		Path:    "/ES",
		Address: "inproc://bench",
		Home:    wsrf.NewStateHome(table),
	})
	if err != nil {
		return nil, err
	}
	h := &RediscoveryHarness{Service: svc, Table: table}
	for i := 0; i < n; i++ {
		status := "Exited"
		if i%4 == 0 {
			status = "Running"
		}
		doc := xmlutil.NewContainer(xmlutil.Q(NSBench, "JobState"),
			xmlutil.NewElement(xmlutil.Q(NSBench, "Status"), status),
			xmlutil.NewElement(xmlutil.Q(NSBench, "Owner"), "scientist"),
		)
		epr, err := svc.CreateResource(fmt.Sprintf("job-%06d", i), doc)
		if err != nil {
			return nil, err
		}
		h.EPRs = append(h.EPRs, epr)
	}
	return h, nil
}

// ClientTableBytes reports the bytes a client must durably hold to keep
// every EPR (the §5 coupling concern: "the amount of state (in the form
// of EPRs) that the client is expected to maintain").
func (h *RediscoveryHarness) ClientTableBytes() int {
	total := 0
	for _, epr := range h.EPRs {
		total += len(epr.String())
	}
	return total
}

// Rediscover recovers the EPRs of all Running jobs after a total
// client-side loss, via a database-backed property query.
func (h *RediscoveryHarness) Rediscover() (int, error) {
	ids, err := h.Table.QueryProperty("Status", "Running")
	if err != nil {
		return 0, err
	}
	recovered := make([]wsa.EndpointReference, 0, len(ids))
	for _, id := range ids {
		recovered = append(recovered, h.Service.EPRFor(id))
	}
	return len(recovered), nil
}

// CodecHarness is the E3 rig over one resourcedb table.
type CodecHarness struct {
	Table *resourcedb.Table
	Doc   *xmlutil.Element
}

// NewCodecHarness builds a table with the codec and a document of
// nprops top-level properties, pre-populated with nrows rows.
func NewCodecHarness(codec resourcedb.Codec, nprops, nrows int) (*CodecHarness, error) {
	table := resourcedb.NewTable("bench", codec)
	doc := xmlutil.NewContainer(xmlutil.Q(NSBench, "State"))
	for i := 0; i < nprops; i++ {
		doc.Append(xmlutil.NewElement(xmlutil.Q(NSBench, fmt.Sprintf("P%d", i)), fmt.Sprintf("v%d", i)))
	}
	for r := 0; r < nrows; r++ {
		row := doc.Clone()
		row.Children[0].Text = fmt.Sprintf("row-%d", r%7)
		if err := table.Put(fmt.Sprintf("r%06d", r), row); err != nil {
			return nil, err
		}
	}
	return &CodecHarness{Table: table, Doc: doc}, nil
}

// Save encodes and stores the document.
func (h *CodecHarness) Save() error { return h.Table.Put("r000000", h.Doc) }

// Load fetches and decodes one row.
func (h *CodecHarness) Load() error {
	_, _, err := h.Table.Get("r000000")
	return err
}

// QueryByProperty runs the property query (index vs full scan).
func (h *CodecHarness) QueryByProperty() (int, error) {
	ids, err := h.Table.QueryProperty("P0", "row-3")
	return len(ids), err
}

// LifetimeHarness is the E9 rig: a service with n resources, a fraction
// expired.
type LifetimeHarness struct {
	Reaper *wsrf.Reaper
	n      int
}

// NewLifetimeHarness provisions n resources; every eighth carries an
// already-expired termination time.
func NewLifetimeHarness(n int) (*LifetimeHarness, error) {
	store := resourcedb.NewStore()
	svc, err := wsrf.NewService(wsrf.ServiceConfig{
		Path:    "/S",
		Address: "inproc://bench",
		Home:    wsrf.NewStateHome(store.MustTable("r", resourcedb.StructuredCodec{})),
	})
	if err != nil {
		return nil, err
	}
	past := time.Now().Add(-time.Hour).UTC().Format(time.RFC3339Nano)
	for i := 0; i < n; i++ {
		doc := xmlutil.NewContainer(xmlutil.Q(NSBench, "State"),
			xmlutil.NewElement(xmlutil.Q(NSBench, "Payload"), "x"),
		)
		if i%8 == 0 {
			doc.Append(xmlutil.NewElement(wsrf.QTerminationTime, past))
		}
		if _, err := svc.CreateResource(fmt.Sprintf("res-%06d", i), doc); err != nil {
			return nil, err
		}
	}
	return &LifetimeHarness{Reaper: wsrf.NewReaper(svc, time.Hour), n: n}, nil
}

// Sweep runs one reaper pass, returning destroyed count (only the first
// sweep finds expired resources; subsequent sweeps measure pure scan
// cost).
func (h *LifetimeHarness) Sweep() int { return h.Reaper.SweepOnce() }
