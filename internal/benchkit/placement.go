package benchkit

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"uvacg/internal/core"
	"uvacg/internal/procspawn"
	"uvacg/internal/resourcedb"
	"uvacg/internal/services/filesystem"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/vfs"
	"uvacg/internal/wsa"
	"uvacg/internal/wsrf"
	"uvacg/internal/wssec"
)

// placementParts is how many input files each data-bound job stages:
// more parts means more staging RPCs per remote placement, which is the
// cost a data-aware policy avoids.
const placementParts = 3

// PlacementResult is one E15 measurement: data-bound job sets run to
// completion under one scheduling policy, with the staging-route
// breakdown that explains the throughput.
type PlacementResult struct {
	Policy     string
	Jobs       int
	Elapsed    time.Duration
	JobsPerSec float64
	// Byte totals by staging locality, summed over every node's FSS.
	// Local covers blob-cache hits and same-machine copies; Remote
	// covers replica pull-throughs and origin wire fetches.
	LocalBytes  int64
	RemoteBytes int64
	// Route counts behind the byte totals.
	BlobHits, LocalCopies, PullThroughs, WireFetches int
}

// LocalFrac is the fraction of staged bytes that never left their
// machine.
func (r PlacementResult) LocalFrac() float64 {
	total := r.LocalBytes + r.RemoteBytes
	if total == 0 {
		return 0
	}
	return float64(r.LocalBytes) / float64(total)
}

// MeasureDataPlacement is the E15 rig: a four-node grid of equal
// machines (so placement is decided by data, not speed) runs several
// sequential job sets, each a dependency chain whose every stage reads
// the same few freshly published reference parts plus its
// predecessor's output, and does almost no compute. Chains put staging
// on the critical path — a stage cannot dispatch until its predecessor
// exits, so the time its inputs spend in flight is paid in full, every
// stage. Dispatch is serial with a fresh NIS poll per job, the
// replication layer keeps two holders per blob, and every outbound
// message pays a LAN round trip. A data-blind policy scatters the
// stages and every machine re-fetches the reference parts (and the
// predecessor output) over the wire; a data-aware policy steers stages
// to the machines the first staging and the replicator already filled,
// turning those fetches into local blob hits and same-machine copies.
func MeasureDataPlacement(ctx context.Context, policy scheduler.Policy, sets, jobsPerSet int) (PlacementResult, error) {
	var mu sync.Mutex
	var recs []filesystem.StageRecord
	grid, err := core.NewGrid(core.GridConfig{
		Nodes: []core.NodeSpec{
			{Name: "n1", Cores: 2, SpeedMHz: 2000, RAMMB: 2048},
			{Name: "n2", Cores: 2, SpeedMHz: 2000, RAMMB: 2048},
			{Name: "n3", Cores: 2, SpeedMHz: 2000, RAMMB: 2048},
			{Name: "n4", Cores: 2, SpeedMHz: 2000, RAMMB: 2048},
		},
		Policy:    policy,
		UnitTime:  5 * time.Microsecond,
		WireDelay: dispatchWireDelay,
		// Serial dispatch over fresh NIS polls, as in E7: concurrent
		// dispatches would blur the per-policy placement decisions this
		// experiment compares.
		MaxInflightDispatch: 1,
		CatalogTTL:          -1,
		Replicas:            2,
		OnStage: func(rec filesystem.StageRecord) {
			mu.Lock()
			recs = append(recs, rec)
			mu.Unlock()
		},
	})
	if err != nil {
		return PlacementResult{}, err
	}
	defer grid.Close()
	client, err := grid.NewClient(wssec.Credentials{}, false)
	if err != nil {
		return PlacementResult{}, err
	}
	defer client.Close()

	// Chain head and chain link: both read every reference part and
	// emit the output the next stage consumes; links also read their
	// predecessor's output.
	script := make([]string, 0, placementParts+3)
	for p := 0; p < placementParts; p++ {
		script = append(script, fmt.Sprintf("read part%d.dat", p))
	}
	head := append(append([]string{}, script...), "write out.dat head", "exit 0")
	link := append(append([]string{}, script...), "read prev.dat", "write out.dat link", "exit 0")
	client.AddFile("head.app", procspawn.BuildScript(head...))
	client.AddFile("link.app", procspawn.BuildScript(link...))

	start := time.Now()
	for s := 0; s < sets; s++ {
		// Fresh input parts per set: the working set changes between
		// sets, so locality must be re-earned each time — a policy only
		// keeps stagings local by following where the data landed.
		for p := 0; p < placementParts; p++ {
			name := fmt.Sprintf("s%02d-part%d.dat", s, p)
			client.AddFile(name, bytes.Repeat([]byte(name+" "), 4096))
		}
		set := core.NewJobSet(fmt.Sprintf("data-%02d", s))
		for j := 0; j < jobsPerSet; j++ {
			app, name := "link.app", fmt.Sprintf("j%03d", j)
			if j == 0 {
				app = "head.app"
			}
			jb := set.Add(name, core.Local(app))
			for p := 0; p < placementParts; p++ {
				jb.Input(fmt.Sprintf("part%d.dat", p), core.Local(fmt.Sprintf("s%02d-part%d.dat", s, p)))
			}
			if j > 0 {
				jb.Input("prev.dat", core.Output(fmt.Sprintf("j%03d", j-1), "out.dat"))
			}
			jb.Outputs("out.dat")
		}
		sub, err := client.Submit(ctx, set.Spec())
		if err != nil {
			return PlacementResult{}, err
		}
		status, err := sub.Wait(ctx)
		if err != nil {
			return PlacementResult{}, err
		}
		if status != scheduler.SetCompleted {
			_, detail := sub.Status()
			return PlacementResult{}, fmt.Errorf("benchkit: job set %s: %s", status, detail)
		}
	}
	elapsed := time.Since(start)

	res := PlacementResult{
		Policy:     policy.Name(),
		Jobs:       sets * jobsPerSet,
		Elapsed:    elapsed,
		JobsPerSec: float64(sets*jobsPerSet) / elapsed.Seconds(),
	}
	mu.Lock()
	defer mu.Unlock()
	for _, rec := range recs {
		switch rec.Route {
		case filesystem.RouteBlob:
			res.BlobHits++
			res.LocalBytes += rec.Size
		case filesystem.RouteLocal:
			res.LocalCopies++
			res.LocalBytes += rec.Size
		case filesystem.RoutePull:
			res.PullThroughs++
			res.RemoteBytes += rec.Size
		case filesystem.RouteWire:
			res.WireFetches++
			res.RemoteBytes += rec.Size
		}
	}
	return res, nil
}

// MeasureStagingThroughput times the blob pull-through path in
// isolation: a holder FSS is seeded with fresh payloads and a second
// machine stages each one by content hash, pulling the blob from the
// replica. No wire delay is injected — the number is the raw
// content-addressed transfer bandwidth in MiB/s.
func MeasureStagingThroughput(ctx context.Context, payloadSize, iters int) (float64, error) {
	network := transport.NewNetwork()
	client := transport.NewClient().WithNetwork(network)
	mkFSS := func(host string) (*filesystem.Service, error) {
		store := resourcedb.NewStore()
		svc, err := filesystem.New(filesystem.Config{
			Address: "inproc://" + host,
			FS:      vfs.New(),
			Client:  client,
			Home:    wsrf.NewStateHome(store.MustTable("dirs", resourcedb.StructuredCodec{})),
			Host:    host,
		})
		if err != nil {
			return nil, err
		}
		mux := soap.NewMux()
		mux.Handle(svc.WSRF().Path(), svc.WSRF().Dispatcher())
		network.Register(host, transport.NewServer(mux))
		return svc, nil
	}
	holder, err := mkFSS("holder")
	if err != nil {
		return 0, err
	}
	stager, err := mkFSS("stager")
	if err != nil {
		return 0, err
	}
	srcDir, err := filesystem.CreateDirectoryVia(ctx, client, holder.EPR(), "seed")
	if err != nil {
		return 0, err
	}
	dstDir, err := filesystem.CreateDirectoryVia(ctx, client, stager.EPR(), "work")
	if err != nil {
		return 0, err
	}

	var elapsed time.Duration
	for i := 0; i < iters; i++ {
		// Fresh content per iteration, so every staging is a genuine
		// pull-through instead of a cache hit.
		payload := bytes.Repeat([]byte{byte(i), byte(i >> 8), 'u', 'v'}, (payloadSize+3)/4)[:payloadSize]
		name := fmt.Sprintf("payload-%03d.bin", i)
		if err := filesystem.WriteFile(ctx, client, srcDir, name, payload); err != nil {
			return 0, err
		}
		refs := []filesystem.FileRef{{
			Source:     wsa.NewEPR("inproc://nowhere/files"),
			RemoteName: name,
			Hash:       filesystem.HashBytes(payload),
			Size:       int64(len(payload)),
			Replicas:   []wsa.EndpointReference{holder.EPR()},
		}}
		start := time.Now()
		if _, err := client.Call(ctx, dstDir, filesystem.ActionUploadSync,
			filesystem.UploadRequest(wsa.EndpointReference{}, "", refs)); err != nil {
			return 0, err
		}
		elapsed += time.Since(start)
	}
	if st := stager.StageStats(); st.PullThroughs != int64(iters) {
		return 0, fmt.Errorf("benchkit: %d of %d stagings were pull-throughs: %+v", st.PullThroughs, iters, st)
	}
	return float64(payloadSize) * float64(iters) / elapsed.Seconds() / (1 << 20), nil
}
