package benchkit

import (
	"context"
	"fmt"
	"math"
	"time"

	"uvacg/internal/core"
	"uvacg/internal/procspawn"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/vfs"
	"uvacg/internal/wssec"
)

// GridHarness is the E7/F3 rig: a heterogeneous simulated campus grid
// under a selectable scheduling policy.
type GridHarness struct {
	Grid   *core.Grid
	Client *core.Client
}

// HeterogeneousNodes is the standard E7 machine mix: one fast, two
// medium, one slow — the spread a campus grid of donated desktops has.
func HeterogeneousNodes() []core.NodeSpec {
	return []core.NodeSpec{
		{Name: "fast", Cores: 4, SpeedMHz: 3200, RAMMB: 4096},
		{Name: "mid-a", Cores: 2, SpeedMHz: 2000, RAMMB: 2048},
		{Name: "mid-b", Cores: 2, SpeedMHz: 2000, RAMMB: 1024},
		{Name: "slow", Cores: 1, SpeedMHz: 800, RAMMB: 512},
	}
}

// NewGridHarness builds a grid with the given nodes and policy.
// UnitTime is tuned so jobs are long enough for placement to matter but
// short enough for benchmarking.
func NewGridHarness(nodes []core.NodeSpec, policy scheduler.Policy) (*GridHarness, error) {
	grid, err := core.NewGrid(core.GridConfig{
		Nodes:    nodes,
		Policy:   policy,
		UnitTime: 20 * time.Microsecond,
		// E7 measures placement quality, so dispatch stays serial with a
		// fresh NIS poll per job: concurrent dispatches over a cached
		// catalog would let Greedy herd onto whichever node last looked
		// idle and corrupt the policy comparison.
		MaxInflightDispatch: 1,
		CatalogTTL:          -1,
	})
	if err != nil {
		return nil, err
	}
	client, err := grid.NewClient(wssec.Credentials{}, false)
	if err != nil {
		grid.Close()
		return nil, err
	}
	client.AddFile("worker.app", procspawn.BuildScript("compute 4000", "write out.txt done", "exit 0"))
	client.AddFile("stage.app", procspawn.BuildScript("read in.txt", "compute 1500", "transform in.txt out.txt copy", "exit 0"))
	client.AddFile("seed.app", procspawn.BuildScript("compute 500", "write out.txt seed", "exit 0"))
	return &GridHarness{Grid: grid, Client: client}, nil
}

// Close tears the grid down.
func (h *GridHarness) Close() { h.Client.Close(); h.Grid.Close() }

// RunBatch submits n independent worker jobs as one job set and returns
// the makespan (E7's bag-of-tasks workload).
func (h *GridHarness) RunBatch(ctx context.Context, n int) (time.Duration, error) {
	set := core.NewJobSet(fmt.Sprintf("batch-%d", time.Now().UnixNano()))
	for i := 0; i < n; i++ {
		set.Add(fmt.Sprintf("w%03d", i), core.Local("worker.app"))
	}
	return h.runToCompletion(ctx, set.Spec())
}

// RunPipeline submits a linear depth-stage dependency chain (E7's DAG
// workload; also the F3 end-to-end scenario).
func (h *GridHarness) RunPipeline(ctx context.Context, depth int) (time.Duration, error) {
	set := core.NewJobSet(fmt.Sprintf("pipe-%d", time.Now().UnixNano()))
	set.Add("s0", core.Local("seed.app")).Outputs("out.txt")
	for i := 1; i < depth; i++ {
		set.Add(fmt.Sprintf("s%d", i), core.Local("stage.app")).
			Input("in.txt", core.Output(fmt.Sprintf("s%d", i-1), "out.txt")).
			Outputs("out.txt")
	}
	return h.runToCompletion(ctx, set.Spec())
}

func (h *GridHarness) runToCompletion(ctx context.Context, spec *core.JobSet) (time.Duration, error) {
	start := time.Now()
	sub, err := h.Client.Submit(ctx, spec)
	if err != nil {
		return 0, err
	}
	status, err := sub.Wait(ctx)
	if err != nil {
		return 0, err
	}
	if status != scheduler.SetCompleted {
		_, detail := sub.Status()
		return 0, fmt.Errorf("benchkit: job set %s: %s", status, detail)
	}
	return time.Since(start), nil
}

// UtilizationSweep is the E8 rig: a monitor over a machine whose
// background load follows a sine wave; it reports how many threshold
// notifications a fixed number of samples produced, plus the mean
// staleness (absolute error between the NIS-visible value and truth).
func UtilizationSweep(threshold float64, samples int) (notifies int, meanError float64, err error) {
	fs := vfs.New()
	spawner, err := procspawn.NewSpawner(procspawn.Config{FS: fs, Cores: 2, SpeedMHz: 2000})
	if err != nil {
		return 0, 0, err
	}
	step := 0
	background := func() float64 {
		// One full load cycle per 200 samples, amplitude 0.45.
		return 0.45 + 0.45*math.Sin(2*math.Pi*float64(step)/200)
	}
	var reported float64
	monitor := procspawn.NewUtilizationMonitor(spawner, procspawn.MonitorConfig{
		Threshold:  threshold,
		Background: background,
		Notify:     func(u float64) { reported = u },
	})
	notifies = 0
	var errSum float64
	for step = 0; step < samples; step++ {
		truth := monitor.Utilization()
		if monitor.Sample() {
			notifies++
		}
		errSum += math.Abs(truth - reported)
	}
	return notifies, errSum / float64(samples), nil
}
