package benchkit

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"uvacg/internal/resourcedb"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/wsa"
	"uvacg/internal/wsn"
	"uvacg/internal/wsrf"
	"uvacg/internal/xmlutil"
)

// NotifyHarness is the E4 rig: a producing service, optionally fronted
// by a Notification Broker, and n subscribed consumers. It compares
// push delivery against the polling a WSRF client would otherwise do.
type NotifyHarness struct {
	Client    *transport.Client
	Producer  *wsn.Producer
	Broker    *wsn.Broker
	ViaBroker bool
	Consumers int

	statusRC *wsrf.ResourceClient
	received atomic.Int64
	source   wsa.EndpointReference
}

// NewNotifyHarness wires n consumers to the producer (direct) or to a
// broker the producer publishes through.
func NewNotifyHarness(consumers int, viaBroker bool) (*NotifyHarness, error) {
	network := transport.NewNetwork()
	client := transport.NewClient().WithNetwork(network)
	store := resourcedb.NewStore()

	h := &NotifyHarness{Client: client, ViaBroker: viaBroker, Consumers: consumers}

	// The producing service also exposes a pollable status resource —
	// the polling baseline reads it with GetResourceProperty.
	owner, err := wsrf.NewService(wsrf.ServiceConfig{
		Path:    "/ES",
		Address: "inproc://producer",
		Home:    wsrf.NewStateHome(store.MustTable("jobs", resourcedb.StructuredCodec{})),
	})
	if err != nil {
		return nil, err
	}
	owner.Enable(wsrf.ResourcePropertiesPortType{})
	statusEPR, err := owner.CreateResource("job-1", xmlutil.NewContainer(xmlutil.Q(NSBench, "JobState"),
		xmlutil.NewElement(xmlutil.Q(NSBench, "Status"), "Running"),
	))
	if err != nil {
		return nil, err
	}
	h.statusRC = wsrf.NewResourceClient(client, statusEPR)

	producer, err := wsn.NewProducer(owner, wsrf.NewStateHome(store.MustTable("subs", resourcedb.BlobCodec{})), client)
	if err != nil {
		return nil, err
	}
	h.Producer = producer

	producerMux := soap.NewMux()
	producerMux.Handle(owner.Path(), owner.Dispatcher())
	producerMux.Handle(producer.SubscriptionService().Path(), producer.SubscriptionService().Dispatcher())
	network.Register("producer", transport.NewServer(producerMux))

	var subscribeTo func(consumer wsa.EndpointReference) error
	if viaBroker {
		broker, err := wsn.NewBroker("/NB", "inproc://master",
			wsrf.NewStateHome(store.MustTable("broker-subs", resourcedb.BlobCodec{})), client)
		if err != nil {
			return nil, err
		}
		h.Broker = broker
		masterMux := soap.NewMux()
		masterMux.Handle(broker.Service().Path(), broker.Service().Dispatcher())
		masterMux.Handle(broker.Producer().SubscriptionService().Path(), broker.Producer().SubscriptionService().Dispatcher())
		network.Register("master", transport.NewServer(masterMux))
		subscribeTo = func(consumer wsa.EndpointReference) error {
			_, err := broker.Producer().Subscribe(consumer, wsn.Simple("bench"))
			return err
		}
		h.source = broker.EPR()
	} else {
		subscribeTo = func(consumer wsa.EndpointReference) error {
			_, err := producer.Subscribe(consumer, wsn.Simple("bench"))
			return err
		}
	}

	for i := 0; i < consumers; i++ {
		cons := wsn.NewConsumer()
		cons.Handle(wsn.Simple("bench"), func(context.Context, wsn.Notification) {
			h.received.Add(1)
		})
		mux := soap.NewMux()
		cons.Mount(mux, "/listener")
		host := fmt.Sprintf("consumer-%d", i)
		network.Register(host, transport.NewServer(mux))
		if err := subscribeTo(wsa.NewEPR("inproc://" + host + "/listener")); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// PublishAndWait publishes one event and blocks until every consumer
// has processed it — the end-to-end push path.
func (h *NotifyHarness) PublishAndWait(ctx context.Context) error {
	start := h.received.Load()
	payload := wsn.TextMessage(xmlutil.Q(NSBench, "Event"), "tick")
	if h.ViaBroker {
		if err := wsn.PublishViaBroker(ctx, h.Client, h.Broker.EPR(), wsn.Notification{Topic: "bench/tick", Message: payload}); err != nil {
			return err
		}
	} else {
		h.Producer.Publish(ctx, "bench/tick", wsa.EndpointReference{}, payload)
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.received.Load() < start+int64(h.Consumers) {
		if time.Now().After(deadline) {
			return fmt.Errorf("benchkit: fan-out never completed (%d/%d)", h.received.Load()-start, h.Consumers)
		}
		// Busy-spin with a tiny pause: delivery is in-process.
		time.Sleep(time.Microsecond)
	}
	return nil
}

// PollOnce performs one polling-baseline status read: what all n
// consumers would each have to do repeatedly without notification. One
// call's cost × poll rate × consumers is the polling load.
func (h *NotifyHarness) PollOnce(ctx context.Context) error {
	_, err := h.statusRC.GetPropertyText(ctx, xmlutil.Q(NSBench, "Status"))
	return err
}

// Received reports total deliveries (for verification).
func (h *NotifyHarness) Received() int64 { return h.received.Load() }
