package benchkit

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"uvacg/internal/resourcedb"
	"uvacg/internal/services/filesystem"
	"uvacg/internal/soap"
	"uvacg/internal/transport"
	"uvacg/internal/vfs"
	"uvacg/internal/wsa"
	"uvacg/internal/wsrf"
)

// TransferHarness is the E5/E6 rig: two FSS machines reachable over
// every binding (inproc, real HTTP, real soap.tcp), with staged payload
// files of configurable size.
type TransferHarness struct {
	Client *transport.Client
	// Legacy fetches with the pre-attachment wire behaviour — inline
	// base64 and a fresh dial per message — so E6 can report the fast
	// path and its baseline side by side on identical payloads.
	Legacy *transport.Client

	fssA *filesystem.Service // source machine
	fssB *filesystem.Service // destination machine

	// Source directory EPRs per binding scheme.
	srcInproc wsa.EndpointReference
	srcHTTP   wsa.EndpointReference
	srcTCP    wsa.EndpointReference

	dstDir wsa.EndpointReference // destination working dir (inproc)

	uploadDone chan struct{}

	httpShutdown func(context.Context) error
	tcpListener  *transport.TCPListener
}

// NewTransferHarness stages one payload file of the given size on
// machine A and opens HTTP and soap.tcp listeners for it, so the same
// bytes can be fetched through each binding.
func NewTransferHarness(payloadSize int) (*TransferHarness, error) {
	network := transport.NewNetwork()
	client := transport.NewClient().WithNetwork(network)
	legacy := transport.NewClient().WithNetwork(network).DisableAttachments()
	legacyTCP := transport.NewTCPTransport()
	legacyTCP.MaxIdlePerHost = 0 // dial per message, as before pooling
	legacyTCP.DisableAttachments = true
	legacy.RegisterScheme(transport.SchemeTCP, legacyTCP)
	h := &TransferHarness{Client: client, Legacy: legacy, uploadDone: make(chan struct{}, 64)}

	mkFSS := func(host string) (*filesystem.Service, *soap.Mux, error) {
		fs := vfs.New()
		store := resourcedb.NewStore()
		svc, err := filesystem.New(filesystem.Config{
			Address: "inproc://" + host,
			FS:      fs,
			Client:  client,
			Home:    wsrf.NewStateHome(store.MustTable("dirs", resourcedb.StructuredCodec{})),
		})
		if err != nil {
			return nil, nil, err
		}
		mux := soap.NewMux()
		mux.Handle(svc.WSRF().Path(), svc.WSRF().Dispatcher())
		network.Register(host, transport.NewServer(mux))
		return svc, mux, nil
	}

	var muxA *soap.Mux
	var err error
	h.fssA, muxA, err = mkFSS("machine-a")
	if err != nil {
		return nil, err
	}
	h.fssB, _, err = mkFSS("machine-b")
	if err != nil {
		return nil, err
	}

	// Destination working directory + an UploadComplete sink playing
	// the ES's role.
	sinkDisp := soap.NewDispatcher()
	sinkDisp.Register(filesystem.ActionUploadComplete, func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		h.uploadDone <- struct{}{}
		return nil, nil
	})
	sinkMux := soap.NewMux()
	sinkMux.Handle("/ES", sinkDisp)
	network.Register("es-sink", transport.NewServer(sinkMux))

	// Stage the payload on machine A.
	srcDir, _, err := h.fssA.CreateDirectory("src")
	if err != nil {
		return nil, err
	}
	payload := make([]byte, payloadSize)
	rand.New(rand.NewSource(1)).Read(payload)
	ctx := context.Background()
	if err := filesystem.WriteFile(ctx, client, srcDir, "payload.bin", payload); err != nil {
		return nil, err
	}
	h.srcInproc = srcDir

	dstDir, _, err := h.fssB.CreateDirectory("dst")
	if err != nil {
		return nil, err
	}
	h.dstDir = dstDir

	// Expose machine A's FSS over real HTTP and soap.tcp as well: the
	// same directory resource is reachable through three bindings.
	httpBase, httpShutdown, err := transport.ListenHTTP(transport.NewServer(muxA), "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h.httpShutdown = httpShutdown
	h.srcHTTP = wsa.EndpointReference{Address: httpBase + "/FileSystemService", ReferenceProperties: srcDir.ReferenceProperties}

	tcpListener, err := transport.ListenTCP(transport.NewServer(muxA), "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h.tcpListener = tcpListener
	h.srcTCP = wsa.EndpointReference{Address: tcpListener.BaseURL() + "/FileSystemService", ReferenceProperties: srcDir.ReferenceProperties}
	return h, nil
}

// Close stops the real listeners.
func (h *TransferHarness) Close() {
	if h.httpShutdown != nil {
		h.httpShutdown(context.Background())
	}
	if h.tcpListener != nil {
		h.tcpListener.Close()
	}
}

// Source returns the payload directory EPR for a binding scheme
// ("inproc", "http", "soap.tcp").
func (h *TransferHarness) Source(scheme string) (wsa.EndpointReference, error) {
	switch scheme {
	case "inproc":
		return h.srcInproc, nil
	case "http":
		return h.srcHTTP, nil
	case "soap.tcp":
		return h.srcTCP, nil
	}
	return wsa.EndpointReference{}, fmt.Errorf("benchkit: unknown scheme %q", scheme)
}

// Fetch reads the payload through the given binding (E6).
func (h *TransferHarness) Fetch(ctx context.Context, scheme string) (int, error) {
	src, err := h.Source(scheme)
	if err != nil {
		return 0, err
	}
	data, err := filesystem.FetchFile(ctx, h.Client, src, "payload.bin")
	return len(data), err
}

// FetchLegacy is Fetch with the pre-attachment wire behaviour (inline
// base64, dial per message) — the E6 baseline rows.
func (h *TransferHarness) FetchLegacy(ctx context.Context, scheme string) (int, error) {
	src, err := h.Source(scheme)
	if err != nil {
		return 0, err
	}
	data, err := filesystem.FetchFile(ctx, h.Legacy, src, "payload.bin")
	return len(data), err
}

// LocalStage copies the payload between two directories on the same
// machine — the FSS fast path (E6's third row).
func (h *TransferHarness) LocalStage(ctx context.Context) error {
	dst, _, err := h.fssA.CreateDirectory("local")
	if err != nil {
		return err
	}
	req := filesystem.UploadRequest(wsa.EndpointReference{}, "", []filesystem.FileRef{
		{Source: h.srcInproc, RemoteName: "payload.bin"},
	})
	_, err = h.Client.Call(ctx, dst, filesystem.ActionUploadSync, req)
	return err
}

// SyncUpload stages the payload to machine B with the blocking call:
// the E5 baseline, where the requester waits out the whole transfer.
func (h *TransferHarness) SyncUpload(ctx context.Context) error {
	req := filesystem.UploadRequest(wsa.EndpointReference{}, "", []filesystem.FileRef{
		{Source: h.srcInproc, RemoteName: "payload.bin"},
	})
	_, err := h.Client.Call(ctx, h.dstDir, filesystem.ActionUploadSync, req)
	return err
}

// AsyncUpload stages the payload with the paper's one-way protocol and
// returns (blocked, total): how long the requester was tied up versus
// how long until the completion notification landed (E5).
func (h *TransferHarness) AsyncUpload(ctx context.Context) (blocked, total time.Duration, err error) {
	req := filesystem.UploadRequest(wsa.NewEPR("inproc://es-sink/ES"), "tok", []filesystem.FileRef{
		{Source: h.srcInproc, RemoteName: "payload.bin"},
	})
	start := time.Now()
	if err := h.Client.Notify(ctx, h.dstDir, filesystem.ActionUpload, req); err != nil {
		return 0, 0, err
	}
	blocked = time.Since(start)
	select {
	case <-h.uploadDone:
		return blocked, time.Since(start), nil
	case <-time.After(30 * time.Second):
		return blocked, 0, fmt.Errorf("benchkit: upload completion never arrived")
	}
}
