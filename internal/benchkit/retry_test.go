package benchkit

import (
	"context"
	"testing"
	"time"
)

func TestMeasureRetryStormAccountsEveryDispatch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := MeasureRetryStorm(ctx, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatches != 8*3 {
		t.Fatalf("dispatches = %d, want %d", res.Dispatches, 8*3)
	}
	if res.DispatchesPerSec() <= 0 {
		t.Fatalf("nonsense throughput: %+v", res)
	}
}

func TestMeasurePreemptionOrdersLatencies(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := MeasurePreemption(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictP50 <= 0 || res.EvictMax < res.EvictP50 {
		t.Fatalf("nonsense evict quantiles: %+v", res)
	}
	if res.ResumeP50 < res.EvictP50 {
		t.Fatalf("interactive completed before the eviction it needed: %+v", res)
	}
}
