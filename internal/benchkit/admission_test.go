package benchkit

import "testing"

func TestMeasureAdmissionStormDrains(t *testing.T) {
	res, err := MeasureAdmissionStorm(50, 4, 0, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != res.Submitted || res.Shed != 0 {
		t.Fatalf("unlimited drained storm shed work: %+v", res)
	}
	if res.Drained != res.Accepted {
		t.Fatalf("drained %d of %d accepted", res.Drained, res.Accepted)
	}
	if res.AckP99 < res.AckP50 || res.AckP50 <= 0 {
		t.Fatalf("nonsense latency quantiles: p50=%v p99=%v", res.AckP50, res.AckP99)
	}
}

func TestMeasureAdmissionStormSheds(t *testing.T) {
	res, err := MeasureAdmissionStorm(20, 10, 25, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted+res.Shed != res.Submitted {
		t.Fatalf("accepted %d + shed %d != submitted %d", res.Accepted, res.Shed, res.Submitted)
	}
	if res.Shed == 0 {
		t.Fatalf("bounded undrained queue never shed: %+v", res)
	}
	if res.Accepted < 25 {
		t.Fatalf("accepted %d, want at least the queue bound 25", res.Accepted)
	}
}

func TestMeasureFairShareTracksWeights(t *testing.T) {
	share, worst, err := MeasureFairShare(map[string]int{"a": 4, "b": 2, "c": 1}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if worst >= 2 {
		t.Fatalf("fair-share ratio %.2f out of tolerance (shares %v)", worst, share)
	}
	if share["a"] <= share["b"] || share["b"] <= share["c"] {
		t.Fatalf("shares do not respect weight order: %v", share)
	}
}
