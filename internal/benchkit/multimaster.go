package benchkit

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"uvacg/internal/lease"
	"uvacg/internal/procspawn"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/simgrid"
)

// MultiMasterResult is one E13 aggregate-throughput run: a batch of
// independent job sets spread across the shard ring, pushed through a
// cluster of M scheduler replicas and timed to full quiescence.
type MultiMasterResult struct {
	Masters    int
	Shards     int
	Nodes      int
	Sets       int
	Jobs       int
	Elapsed    time.Duration
	JobsPerSec float64
}

// FailoverResult is the E13 failover drill: one of two masters is
// killed while its sets are mid-flight, and the clock runs on the two
// recovery milestones that follow.
type FailoverResult struct {
	Masters int
	Shards  int
	// Claim is kill → the survivor holds every shard (lease expiry +
	// grace + its next maintenance tick).
	Claim time.Duration
	// Resume is kill → the survivor's first committed dispatch on a
	// shard the dead master owned; the orphaned work is moving again.
	Resume time.Duration
	// Completed counts acked sets that finished SetCompleted, out of
	// Sets submitted — failover must lose none.
	Completed int
	Sets      int
}

// multiMasterWireDelay is the per-message latency for E13. It is
// deliberately larger than E12's dispatchWireDelay: with dispatch
// concurrency pinned to one per master (below), each master's
// throughput ceiling is one job per dispatch round-trip, so replica
// count — not host CPU — is the scaled resource. E12 already measures
// how far a single master gets by widening its own dispatch window.
const multiMasterWireDelay = 10 * time.Millisecond

// MeasureMultiMasterThroughput is the E13 scaling rig: `sets` job sets
// of `jobsPerSet` independent quick jobs each, submitted concurrently
// against a cluster of `masters` replicas and `nodes` machines, timed
// from first submit to cluster quiescence. masters=1 runs the classic
// single-master layout — the baseline the sharded layouts are compared
// against. Each master dispatches one job at a time over a 10ms wire,
// so aggregate throughput tracks the number of live masters even on a
// single-core host.
func MeasureMultiMasterThroughput(ctx context.Context, masters, nodes, sets, jobsPerSet int) (MultiMasterResult, error) {
	dir, err := os.MkdirTemp("", "uvacg-multimaster-*")
	if err != nil {
		return MultiMasterResult{}, err
	}
	defer os.RemoveAll(dir)
	c, err := simgrid.NewCluster(simgrid.ClusterConfig{
		Seed:        1,
		Nodes:       nodes,
		DataDir:     dir,
		Masters:     masters,
		WireDelay:   multiMasterWireDelay,
		MaxInflight: 1,
	})
	if err != nil {
		return MultiMasterResult{}, err
	}
	defer c.Close()
	c.Observer.Files.Publish("quick.app", procspawn.BuildScript("write out.txt ok", "exit 0"))

	specs := make([]*scheduler.JobSetSpec, sets)
	for i := range specs {
		jobs := make([]scheduler.JobSpec, jobsPerSet)
		for j := range jobs {
			jobs[j] = scheduler.JobSpec{
				Name:       fmt.Sprintf("w%03d", j),
				Executable: "local://quick.app",
				Outputs:    []string{"out.txt"},
			}
		}
		specs[i] = &scheduler.JobSetSpec{Name: fmt.Sprintf("mm-%d", i), Jobs: jobs}
	}

	// Concurrent submitters model independent clients; set names hash
	// across the ring so every master owns a slice of the batch.
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, sets)
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec *scheduler.JobSetSpec) {
			defer wg.Done()
			_, errs[i] = c.Submit(ctx, spec)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return MultiMasterResult{}, err
		}
	}
	if err := c.AwaitQuiescence(120 * time.Second); err != nil {
		return MultiMasterResult{}, err
	}
	elapsed := time.Since(start)
	jobs := sets * jobsPerSet
	return MultiMasterResult{
		Masters:    masters,
		Shards:     c.Shards(),
		Nodes:      nodes,
		Sets:       sets,
		Jobs:       jobs,
		Elapsed:    elapsed,
		JobsPerSec: float64(jobs) / elapsed.Seconds(),
	}, nil
}

// MeasureFailover kills one of two masters while every shard has a
// two-layer set mid-flight and times the takeover: lease claim and
// first orphaned-shard dispatch by the survivor, then waits the batch
// out and counts survivors. The lease TTL is part of the measurement —
// Claim ≈ TTL + grace + one maintenance tick by construction.
func MeasureFailover(ctx context.Context, ttl time.Duration) (FailoverResult, error) {
	const masters, shards, nodes = 2, 4, 4
	res := FailoverResult{Masters: masters, Shards: shards}
	dir, err := os.MkdirTemp("", "uvacg-failover-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	c, err := simgrid.NewCluster(simgrid.ClusterConfig{
		Seed:      2,
		Nodes:     nodes,
		DataDir:   dir,
		Masters:   masters,
		Shards:    shards,
		LeaseTTL:  ttl,
		WireDelay: dispatchWireDelay,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()
	c.Observer.Files.Publish("layer-a.app", procspawn.BuildScript("compute 200000", "write out.txt ok", "exit 0"))
	c.Observer.Files.Publish("layer-b.app", procspawn.BuildScript("read in_a.txt", "exit 0"))

	// One two-layer set per shard, so the dead master's shards all hold
	// mid-flight work when the axe falls.
	var acks []simgrid.Ack
	var victimTopics []string
	for shard := 0; shard < shards; shard++ {
		name := nameOnShard(shard, shards, "fo")
		spec := &scheduler.JobSetSpec{Name: name, Jobs: []scheduler.JobSpec{
			{Name: "a", Executable: "local://layer-a.app", Outputs: []string{"out.txt"}},
			{Name: "b", Executable: "local://layer-b.app",
				Inputs: []scheduler.FileSpec{{LocalName: "in_a.txt", Source: "a://out.txt"}}},
		}}
		ack, err := c.Submit(ctx, spec)
		if err != nil {
			return res, err
		}
		acks = append(acks, ack)
		if shard%masters == 0 {
			victimTopics = append(victimTopics, ack.Topic)
		}
	}
	res.Sets = len(acks)

	// The victim's sets must be observably running before the kill:
	// layer one started, layer two still pending.
	if err := awaitStarted(c, victimTopics, 30*time.Second); err != nil {
		return res, err
	}

	start := time.Now()
	c.CrashMasterN(0)
	survivor := c.LeaseManagerN(1)
	deadline := time.Now().Add(60 * time.Second)
	for res.Claim == 0 || res.Resume == 0 {
		if res.Claim == 0 && len(survivor.Owned()) == shards {
			res.Claim = time.Since(start)
		}
		if res.Resume == 0 {
			for _, d := range c.Dispatches() {
				// The survivor could never dispatch on the victim's
				// shards before takeover, so the first such record
				// timestamps the resumption of orphaned work.
				if d.Owner == survivor.Owner() && d.Shard%masters == 0 {
					res.Resume = time.Since(start)
					break
				}
			}
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("benchkit: failover incomplete after %v (claim=%v resume=%v)",
				time.Since(start), res.Claim, res.Resume)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := c.AwaitQuiescence(60 * time.Second); err != nil {
		return res, err
	}
	completed := make(map[string]bool)
	for _, v := range c.JobSetDocs() {
		if v.Status == scheduler.SetCompleted {
			completed[v.Topic] = true
		}
	}
	for _, ack := range acks {
		if completed[ack.Topic] {
			res.Completed++
		}
	}
	return res, nil
}

// nameOnShard brute-forces a set name hashing onto one shard.
func nameOnShard(shard, shards int, tag string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s-%d", tag, i)
		if lease.ShardOf(name, shards) == shard {
			return name
		}
	}
}

// awaitStarted polls the observer until every listed topic has a
// started event.
func awaitStarted(c *simgrid.Cluster, topics []string, deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for {
		started := make(map[string]bool)
		for _, ev := range c.Observer.Events() {
			if ev.Kind == "started" {
				started[ev.Set] = true
			}
		}
		ready := true
		for _, topic := range topics {
			if !started[topic] {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(end) {
			return fmt.Errorf("benchkit: job sets never started: %v", topics)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
