package benchkit

import (
	"context"
	"fmt"
	"time"

	"uvacg/internal/core"
	"uvacg/internal/procspawn"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/wssec"
)

// DispatchResult is one dispatch-throughput measurement: a wide job set
// of independent quick jobs pushed through the scheduler, with the
// catalog-feeding stats that explain the number.
type DispatchResult struct {
	Jobs          int
	Elapsed       time.Duration
	JobsPerSec    float64
	NISPolls      int64 // GetProcessors RPCs the dispatch path attempted
	CatalogPushes int64 // catalog-changed notifications applied
}

// dispatchWireDelay models a campus LAN round trip. Without it the
// inproc transport answers in nanoseconds and the dispatch path's RPC
// count — the thing the catalog cache and parallel dispatch exist to
// amortize — would be invisible.
const dispatchWireDelay = 3 * time.Millisecond

// MeasureDispatchThroughput is the E12 rig: submit one job set of n
// independent quick jobs to a four-node grid and time it to completion.
// With parallel=false the scheduler runs the pre-cache configuration —
// strictly serial dispatch, one NIS poll per job (the paper's literal
// Fig. 3 loop). With parallel=true it runs the shipped defaults:
// bounded-concurrency dispatch over the notification-fed catalog cache.
// Round-robin placement keeps the two runs' schedules comparable, so
// the measured difference is the dispatch path itself.
func MeasureDispatchThroughput(ctx context.Context, n int, parallel bool) (DispatchResult, error) {
	cfg := core.GridConfig{
		Nodes: []core.NodeSpec{
			{Name: "n1", Cores: 4, SpeedMHz: 2000, RAMMB: 2048},
			{Name: "n2", Cores: 4, SpeedMHz: 2000, RAMMB: 2048},
			{Name: "n3", Cores: 4, SpeedMHz: 2000, RAMMB: 2048},
			{Name: "n4", Cores: 4, SpeedMHz: 2000, RAMMB: 2048},
		},
		Policy:    scheduler.RoundRobin{},
		UnitTime:  5 * time.Microsecond,
		WireDelay: dispatchWireDelay,
	}
	if !parallel {
		cfg.MaxInflightDispatch = 1
		cfg.CatalogTTL = -1
	}
	grid, err := core.NewGrid(cfg)
	if err != nil {
		return DispatchResult{}, err
	}
	defer grid.Close()
	client, err := grid.NewClient(wssec.Credentials{}, false)
	if err != nil {
		return DispatchResult{}, err
	}
	defer client.Close()
	client.AddFile("quick.app", procspawn.BuildScript("write out.txt ok", "exit 0"))

	set := core.NewJobSet("wide")
	for i := 0; i < n; i++ {
		set.Add(fmt.Sprintf("w%03d", i), core.Local("quick.app"))
	}

	start := time.Now()
	sub, err := client.Submit(ctx, set.Spec())
	if err != nil {
		return DispatchResult{}, err
	}
	status, err := sub.Wait(ctx)
	if err != nil {
		return DispatchResult{}, err
	}
	if status != scheduler.SetCompleted {
		_, detail := sub.Status()
		return DispatchResult{}, fmt.Errorf("benchkit: job set %s: %s", status, detail)
	}
	elapsed := time.Since(start)
	polls, pushes := grid.Scheduler.CatalogStats()
	return DispatchResult{
		Jobs:          n,
		Elapsed:       elapsed,
		JobsPerSec:    float64(n) / elapsed.Seconds(),
		NISPolls:      polls,
		CatalogPushes: pushes,
	}, nil
}
