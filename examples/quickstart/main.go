// Command quickstart runs one job on a single-machine grid: the
// smallest end-to-end use of the library. It assembles an in-process
// campus grid, publishes a job script from the "client's machine",
// submits a one-job job set, waits for the completion notification, and
// retrieves the output file from wherever the job ran.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"uvacg/internal/core"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/wssec"
)

func main() {
	// A one-machine grid with a user account (WS-Security end to end).
	grid, err := core.NewGrid(core.GridConfig{
		Nodes: []core.NodeSpec{
			{Name: "win-a", Cores: 2, SpeedMHz: 2800, RAMMB: 1024},
		},
		Accounts: wssec.StaticAccounts{"scientist": "secret"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	client, err := grid.NewClient(wssec.Credentials{Username: "scientist", Password: "secret"}, false)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// The "executable" is a job script served from the client's local
	// file system; the grid stages it to the chosen machine.
	client.AddFile("hello.app", core.Script(
		"compute 100",
		"write greeting.txt hello from the campus grid",
		"exit 0",
	))

	spec := core.NewJobSet("quickstart").
		Add("hello", core.Local("hello.app")).
		Outputs("greeting.txt").
		Spec()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sub, err := client.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted job set %s (topic %s)\n", spec.Name, sub.Topic)

	status, err := sub.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if status != scheduler.SetCompleted {
		_, detail := sub.Status()
		log.Fatalf("job set %s: %s", status, detail)
	}

	out, err := sub.FetchOutput(ctx, "hello", "greeting.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job output: %s\n", out)
}
