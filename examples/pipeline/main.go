// Command pipeline runs the paper's motivating scenario: a job set
// whose jobs feed each other's outputs, scheduled across a
// heterogeneous three-machine grid, with the client watching progress
// through live WS-Notification events (paper Fig. 3, steps 1-10).
//
// The pipeline models a small analysis: generate raw samples, filter
// them, aggregate the survivors, and format a report — four stages, each
// consuming the previous stage's file from wherever it was produced.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"uvacg/internal/core"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/wssec"
)

func main() {
	grid, err := core.NewGrid(core.GridConfig{
		Nodes: []core.NodeSpec{
			{Name: "win-fast", Cores: 4, SpeedMHz: 3200, RAMMB: 2048},
			{Name: "win-mid", Cores: 2, SpeedMHz: 2000, RAMMB: 1024},
			{Name: "win-old", Cores: 1, SpeedMHz: 900, RAMMB: 256},
		},
		Accounts: wssec.StaticAccounts{"scientist": "secret"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	client, err := grid.NewClient(wssec.Credentials{Username: "scientist", Password: "secret"}, false)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Stage scripts live on the client's machine until the grid pulls
	// them (the GUI tool's local file server, paper §4.6).
	client.AddFile("generate.app", core.Script(
		"compute 400",
		"write samples.txt 12 7 93 41 8 77 3 55 21 68",
		"exit 0",
	))
	client.AddFile("filter.app", core.Script(
		"read samples.txt",
		"compute 300",
		"transform samples.txt sorted.txt sort",
		"exit 0",
	))
	client.AddFile("aggregate.app", core.Script(
		"read sorted.txt",
		"compute 200",
		"transform sorted.txt total.txt sum",
		"transform sorted.txt stats.txt count",
		"exit 0",
	))
	client.AddFile("report.app", core.Script(
		"read total.txt",
		"read stats.txt",
		"append report.txt total.txt",
		"append report.txt stats.txt",
		"exit 0",
	))

	spec := core.NewJobSet("analysis-pipeline").
		Add("generate", core.Local("generate.app")).
		Outputs("samples.txt").
		Add("filter", core.Local("filter.app")).
		Input("samples.txt", core.Output("generate", "samples.txt")).
		Outputs("sorted.txt").
		Add("aggregate", core.Local("aggregate.app")).
		Input("sorted.txt", core.Output("filter", "sorted.txt")).
		Outputs("total.txt", "stats.txt").
		Add("report", core.Local("report.app")).
		Input("total.txt", core.Output("aggregate", "total.txt")).
		Input("stats.txt", core.Output("aggregate", "stats.txt")).
		Outputs("report.txt").
		Spec()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := client.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %q — watching events on topic %s\n", spec.Name, sub.Topic)

	// Display the notification stream the way the paper's client
	// application does, until the terminal job-set event.
	go func() {
		for n := range sub.Events() {
			segs := strings.Split(n.Topic, "/")
			if len(segs) == 3 {
				fmt.Printf("  event: %-10s %s\n", segs[1], segs[2])
			}
		}
	}()

	status, err := sub.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if status != scheduler.SetCompleted {
		_, detail := sub.Status()
		log.Fatalf("pipeline %s: %s", status, detail)
	}

	report, err := sub.FetchOutput(ctx, "report", "report.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final report (sum, then lines/words/bytes):\n%s\n", report)
}
