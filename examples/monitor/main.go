// Command monitor is a grid-operations view built purely from the WSRF
// surface: it subscribes to job lifecycle topics through the
// Notification Broker, polls the Node Info Service the way the
// Scheduler does, and queries the NIS's WS-ServiceGroup resource with
// the standard QueryResourceProperties interface — no bespoke monitoring
// API anywhere, which is exactly the paper's argument for standardized
// resource properties (§5).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"uvacg/internal/core"
	"uvacg/internal/services/nodeinfo"
	"uvacg/internal/wsrf"
	"uvacg/internal/wssec"
)

func main() {
	grid, err := core.NewGrid(core.GridConfig{
		Nodes: []core.NodeSpec{
			{Name: "cs-lab-1", Cores: 2, SpeedMHz: 2400, RAMMB: 1024},
			{Name: "cs-lab-2", Cores: 1, SpeedMHz: 1200, RAMMB: 512,
				Background: func() float64 { return 0.35 }}, // someone's using it
		},
		Accounts:             wssec.StaticAccounts{"scientist": "secret"},
		UtilizationThreshold: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	grid.StartMonitors() // background Processor Utilization services

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// 1. Poll the NIS like the Scheduler does (step 2 of Fig. 3).
	procs, err := nodeinfo.GetProcessorsVia(ctx, grid.Client, grid.NIS.EPR())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("processors catalogued by the Node Info Service:")
	for _, p := range procs {
		fmt.Printf("  %-10s %d cores @ %6.0f MHz, %5d MB RAM, util %.0f%%\n",
			p.Host, p.Cores, p.SpeedMHz, p.RAMMB, p.Utilization*100)
	}

	// 2. Query the same catalog through the generic WSRF query
	// interface: find idle machines.
	rc := wsrf.NewResourceClient(grid.Client, grid.NIS.GroupEPR())
	idle, err := rc.Query(ctx, "/Entry/Content/Processor[Utilization='0.0000']")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idle machines by QueryResourceProperties: %d\n", len(idle))

	// 3. Watch live events while a job set runs.
	client, err := grid.NewClient(wssec.Credentials{Username: "scientist", Password: "secret"}, false)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.AddFile("burn.app", core.Script("compute 3000", "write done.txt ok", "exit 0"))
	set := core.NewJobSet("burnin")
	for i := 0; i < 4; i++ {
		set.Add(fmt.Sprintf("burn-%d", i), core.Local("burn.app"))
	}
	sub, err := client.Submit(ctx, set.Spec())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live events from the Notification Broker:")
	go func() {
		for n := range sub.Events() {
			segs := strings.Split(n.Topic, "/")
			if len(segs) == 3 {
				fmt.Printf("  %-22s %-8s %s\n", time.Now().Format("15:04:05.000"), segs[1], segs[2])
			}
		}
	}()
	status, err := sub.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job set finished: %s\n", status)

	// 4. The utilization stream moved the catalog; show the after view.
	procs, err = nodeinfo.GetProcessorsVia(ctx, grid.Client, grid.NIS.EPR())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog after the run:")
	for _, p := range procs {
		fmt.Printf("  %-10s util %.0f%% (updated %s ago)\n",
			p.Host, p.Utilization*100, time.Since(p.UpdatedAt).Round(time.Millisecond))
	}
}
