#uvacg-job
read data.txt
compute 100
transform data.txt total.txt sum
exit 0
