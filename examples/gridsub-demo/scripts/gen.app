#uvacg-job
compute 200
write data.txt 10 20 30 40
exit 0
