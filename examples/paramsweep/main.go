// Command paramsweep fans a parameter sweep out across a heterogeneous
// grid and reduces the results: the bag-of-tasks workload campus grids
// were built for. Sixteen independent worker jobs each "simulate" one
// parameter value; a final reducer consumes all sixteen outputs, which
// exercises the Scheduler's EPR fill-in for many-to-one dependencies and
// its load distribution across unequal machines.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"uvacg/internal/core"
	"uvacg/internal/services/scheduler"
	"uvacg/internal/wsrf"
	"uvacg/internal/wssec"
	"uvacg/internal/xmlutil"
)

const workers = 16

func main() {
	grid, err := core.NewGrid(core.GridConfig{
		Nodes: []core.NodeSpec{
			{Name: "lab-1", Cores: 4, SpeedMHz: 3000, RAMMB: 4096},
			{Name: "lab-2", Cores: 2, SpeedMHz: 2400, RAMMB: 2048},
			{Name: "lab-3", Cores: 2, SpeedMHz: 1600, RAMMB: 1024},
			{Name: "lab-4", Cores: 1, SpeedMHz: 1000, RAMMB: 512},
		},
		Accounts:             wssec.StaticAccounts{"scientist": "secret"},
		UtilizationThreshold: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	// Background Processor Utilization services keep the NIS fresh, so
	// the greedy policy sees machines fill up and spreads the load.
	grid.StartMonitors()

	client, err := grid.NewClient(wssec.Credentials{Username: "scientist", Password: "secret"}, false)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// One worker script per parameter: each "computes" a result that is
	// simply its parameter squared, written to part.txt.
	set := core.NewJobSet("paramsweep")
	reducer := core.Job{Name: "reduce", Executable: core.Local("reduce.app"), Outputs: []string{"sum.txt"}}
	var reduceLines []string
	expected := 0
	for i := 1; i <= workers; i++ {
		name := fmt.Sprintf("w%02d", i)
		app := name + ".app"
		client.AddFile(app, core.Script(
			"compute 40000",
			fmt.Sprintf(`write part.txt %d\n`, i*i),
			"exit 0",
		))
		expected += i * i
		set.Add(name, core.Local(app)).Outputs("part.txt")
		local := "part-" + name + ".txt"
		reducer.Inputs = append(reducer.Inputs, core.FileSpec{LocalName: local, Source: core.Output(name, "part.txt")})
		reduceLines = append(reduceLines, "append parts.txt "+local)
	}
	reduceLines = append(reduceLines, "transform parts.txt sum.txt sum", "exit 0")
	client.AddFile("reduce.app", core.Script(reduceLines...))

	spec := set.Spec()
	spec.Jobs = append(spec.Jobs, reducer)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	start := time.Now()
	sub, err := client.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	status, err := sub.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if status != scheduler.SetCompleted {
		_, detail := sub.Status()
		log.Fatalf("sweep %s: %s", status, detail)
	}
	elapsed := time.Since(start)

	out, err := sub.FetchOutput(ctx, "reduce", "sum.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept %d parameters in %v\n", workers, elapsed.Round(time.Millisecond))
	fmt.Printf("reduced sum = %s (expected %d)\n", out, expected)

	// Show the placement the greedy policy produced, read from the job
	// set's WS-Resource like any WSRF client would.
	rc := wsrf.NewResourceClient(grid.Client, sub.JobSet)
	states, err := rc.GetProperty(ctx, scheduler.QJobState)
	if err != nil {
		log.Fatal(err)
	}
	perNode := make(map[string]int)
	for _, st := range states {
		perNode[st.Attr(xmlutil.Q("", "node"))]++
	}
	fmt.Println("placement:")
	for _, n := range grid.Nodes {
		fmt.Printf("  %-8s %2d jobs\n", n.Name, perNode[n.Name])
	}
}
