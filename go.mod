module uvacg

go 1.22
